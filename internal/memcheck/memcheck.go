// Package memcheck is a memory-safety checker over the simulated GPU — the
// compute-sanitizer memcheck analog built on the same Sanitizer-style hook
// surface the profiler uses (API callbacks + per-instruction access batches).
//
// It detects four bug classes:
//
//   - out-of-bounds kernel accesses, made observable by red zones the
//     allocator reserves around every allocation (gpu.Allocator.SetRedzone):
//     a small overflow lands in guard space and faults instead of silently
//     corrupting the neighboring allocation;
//   - use-after-free, made observable by a bounded FIFO quarantine of freed
//     spans (gpu.Allocator.SetQuarantine): a stale pointer keeps faulting
//     until the quarantine recycles its span;
//   - reads of device bytes never written, tracked by a per-allocation
//     written-shadow bitmap (intraobj.Bitmap at byte granularity);
//   - allocations never freed, scanned when Report is taken.
//
// Every issue carries the allocating (and where relevant freeing and
// accessing) host call paths from internal/callpath, and the report renders
// deterministically: issues are deduplicated under stable keys, sorted, and
// byte-identical across runs.
package memcheck

import (
	"sort"

	"drgpum/internal/callpath"
	"drgpum/internal/gpu"
	"drgpum/internal/intraobj"
	"drgpum/internal/obs"
	"drgpum/internal/pattern"
)

// Config controls the checker.
type Config struct {
	// Redzone is the guard-byte count reserved on each side of every
	// allocation (rounded up to the device alignment). Zero disables red
	// zones, which blinds the checker to overflows smaller than the
	// allocator's alignment padding.
	Redzone uint64
	// QuarantineBytes bounds the freed-span quarantine. Zero disables it,
	// which blinds the checker to use-after-free once an address is reused.
	QuarantineBytes uint64
	// UninitReads enables the written-shadow check for reads of bytes never
	// written. It needs per-instruction accesses (gpu.PatchFull); at lower
	// patch levels it is inert.
	UninitReads bool
}

// DefaultConfig returns the recommended configuration: one alignment unit of
// red zone, a 1 MiB quarantine, and uninitialized-read checking on.
func DefaultConfig() Config {
	return Config{Redzone: 256, QuarantineBytes: 1 << 20, UninitReads: true}
}

// Class is an issue class.
type Class uint8

const (
	// ClassOOB is an out-of-bounds kernel access.
	ClassOOB Class = iota
	// ClassUseAfterFree is a kernel access to a freed, quarantined range.
	ClassUseAfterFree
	// ClassUninitRead is a kernel read of bytes never written.
	ClassUninitRead
	// ClassLeak is an allocation still live when the report was taken.
	ClassLeak
)

// String names the class as it appears in reports.
func (c Class) String() string {
	switch c {
	case ClassOOB:
		return "out-of-bounds"
	case ClassUseAfterFree:
		return "use-after-free"
	case ClassUninitRead:
		return "uninitialized read"
	default:
		return "leak"
	}
}

// ID returns the stable kebab-case identifier memcheck issues use in the
// shared JSON schema (the same "id" vocabulary as pattern.Pattern.ID).
// ClassLeak deliberately maps to the dynamic profiler's "memory-leak" —
// both report the same defect, so they share one identifier.
func (c Class) ID() string {
	switch c {
	case ClassOOB:
		return "out-of-bounds"
	case ClassUseAfterFree:
		return "use-after-free"
	case ClassUninitRead:
		return "uninitialized-read"
	default:
		return pattern.MemoryLeak.ID()
	}
}

// Severity maps every memcheck class onto the shared three-level scale:
// memory-safety issues are definite defects, never advisory.
func (c Class) Severity() pattern.SeverityClass { return pattern.SeverityError }

// allocation is the checker's view of one driver allocation.
type allocation struct {
	ptr   gpu.DevicePtr
	size  uint64
	seq   uint64 // 1-based observation order
	label string

	allocPath callpath.PathID
	freePath  callpath.PathID
	freed     bool

	// shadow marks which bytes of the allocation have ever been written
	// (nil when uninitialized-read checking is off).
	shadow *intraobj.Bitmap
}

func (a *allocation) end() gpu.DevicePtr { return a.ptr + gpu.DevicePtr(a.size) }

// issueKey deduplicates repeated occurrences of the same logical bug: all
// faults of one class on one allocation from one kernel fold into one issue.
type issueKey struct {
	class  Class
	seq    uint64 // allocation sequence number; 0 for wild accesses
	kernel string
	kind   gpu.AccessKind
}

// issue is the internal accumulating form; Report resolves it into Issue.
type issue struct {
	key        issueKey
	addr       gpu.DevicePtr // first occurrence
	accessSize uint32
	count      uint64
	unwritten  uint64 // uninitialized read: unwritten bytes at first read
	obj        *allocation
	accessPath callpath.PathID
}

// pendingUninit accumulates uninitialized reads observed from access batches
// of the in-flight kernel, which are delivered before the kernel's own API
// record (where the launch call path is captured).
type pendingUninit struct {
	alloc     *allocation
	addr      gpu.DevicePtr
	size      uint32
	count     uint64
	unwritten uint64
}

// Checker observes a device and accumulates memory-safety issues. It is a
// gpu.Hook; like the trace collector it is driven synchronously from the
// application goroutine and is not safe for concurrent use.
type Checker struct {
	dev   *gpu.Device
	cfg   Config
	paths *callpath.Unwinder

	allocs map[gpu.DevicePtr]*allocation // live, by user base pointer
	frees  map[gpu.DevicePtr]*allocation // most recently freed at each base
	order  []*allocation                 // every observed allocation, in order
	live   []*allocation                 // live, sorted by address
	last   *allocation                   // last-hit cache for find

	issues  map[issueKey]*issue
	pending map[*allocation]*pendingUninit

	checked uint64 // kernel reads checked against shadows
	freeLog uint64 // frees observed

	// scanNode times the Report leak scan under memcheck/scan when a
	// self-observability recorder is installed (nil otherwise).
	scanNode *obs.Node
}

// SetObs installs a self-observability recorder: taking a Report records a
// span under memcheck/scan. Inert with a nil or disabled recorder.
func (c *Checker) SetObs(rec *obs.Recorder) {
	if root := rec.Root(); root != nil {
		c.scanNode = root.Child("memcheck").Child("scan")
	}
}

// Attach configures the device's allocator for checking (red zone,
// quarantine) and registers the checker as a hook. It must be called before
// the application's first allocation — the allocator refuses to change its
// red zone once blocks exist — and the device must run at gpu.PatchAPI or
// higher for the checker to observe anything (gpu.PatchFull for the
// uninitialized-read check).
func Attach(dev *gpu.Device, cfg Config) *Checker {
	if cfg.Redzone > 0 {
		dev.Allocator().SetRedzone(cfg.Redzone)
	}
	if cfg.QuarantineBytes > 0 {
		dev.Allocator().SetQuarantine(cfg.QuarantineBytes)
	}
	c := &Checker{
		dev:     dev,
		cfg:     cfg,
		paths:   callpath.NewUnwinder(),
		allocs:  make(map[gpu.DevicePtr]*allocation),
		frees:   make(map[gpu.DevicePtr]*allocation),
		issues:  make(map[issueKey]*issue),
		pending: make(map[*allocation]*pendingUninit),
	}
	dev.AddHook(c)
	return c
}

// Annotate attaches a label to the live allocation at ptr, so reports name
// objects the way the application thinks of them.
func (c *Checker) Annotate(ptr gpu.DevicePtr, label string) {
	if a := c.allocs[ptr]; a != nil {
		a.label = label
	}
}

// OnAPI implements gpu.Hook. The skip of 2 mirrors the trace collector: it
// drops OnAPI itself and Device.emit, so the captured leaf is the
// application's call into the GPU API.
func (c *Checker) OnAPI(rec *gpu.APIRecord) {
	switch rec.Kind {
	case gpu.APIMalloc:
		if rec.Custom {
			return // pool tensors live inside tracked segments
		}
		a := &allocation{
			ptr:       rec.Ptr,
			size:      rec.Size,
			seq:       uint64(len(c.order)) + 1,
			allocPath: c.paths.Capture(2),
		}
		if c.cfg.UninitReads {
			a.shadow = intraobj.NewBitmap(int(rec.Size))
		}
		c.order = append(c.order, a)
		c.allocs[a.ptr] = a
		c.insertLive(a)
	case gpu.APIFree:
		if rec.Custom {
			return
		}
		a := c.allocs[rec.Ptr]
		if a == nil {
			return
		}
		a.freed = true
		a.freePath = c.paths.Capture(2)
		delete(c.allocs, rec.Ptr)
		c.removeLive(a)
		c.frees[a.ptr] = a
		c.freeLog++
	case gpu.APIMemcpy, gpu.APIMemset:
		c.markWritten(rec.Writes)
	case gpu.APIKernel:
		launch := c.paths.Capture(2)
		if !rec.Instrumented {
			// No per-access stream for this launch: mark the kernel's
			// object-granularity write set so later reads of those objects
			// are not reported (conservative, never a false positive).
			c.markWritten(rec.Writes)
		}
		c.classifyFaults(rec, launch)
		c.drainPending(rec, launch)
	}
}

// OnAccessBatch implements gpu.Hook: it maintains the written shadows from
// instrumented kernel stores and checks loads against them. Batches arrive
// in execution order, so a store followed by a load of the same bytes within
// one kernel is correctly clean.
func (c *Checker) OnAccessBatch(rec *gpu.APIRecord, batch []gpu.MemAccess) {
	if !c.cfg.UninitReads {
		return
	}
	for i := range batch {
		m := &batch[i]
		if m.Space != gpu.SpaceGlobal {
			continue
		}
		a := c.find(m.Addr)
		if a == nil || a.shadow == nil {
			continue // out-of-bounds accesses are classified via rec.Faults
		}
		lo := int(m.Addr - a.ptr)
		hi := lo + int(m.Size) - 1
		if hi >= int(a.size) {
			hi = int(a.size) - 1 // straddling access; the spill is a fault
		}
		if m.Kind == gpu.AccessWrite {
			a.shadow.SetRange(lo, hi)
			continue
		}
		c.checked++
		if a.shadow.AllSet(lo, hi) {
			continue
		}
		p := c.pending[a]
		if p == nil {
			p = &pendingUninit{
				alloc:     a,
				addr:      m.Addr,
				size:      m.Size,
				unwritten: a.size - uint64(a.shadow.Count()),
			}
			c.pending[a] = p
		}
		p.count++
	}
}

// classifyFaults attributes a kernel's out-of-bounds faults to allocations.
// A faulting address inside a quarantined span is a use-after-free; inside a
// live reserved span (red zone, alignment padding, or a straddling access
// that started in bounds) it is an out-of-bounds access on that allocation;
// anywhere else it is a wild access, reported without an object.
func (c *Checker) classifyFaults(rec *gpu.APIRecord, launch callpath.PathID) {
	if len(rec.Faults) == 0 {
		return
	}
	alloc := c.dev.Allocator()
	for _, f := range rec.Faults {
		if q, ok := alloc.InQuarantine(f.Addr); ok {
			c.record(issueKey{class: ClassUseAfterFree, seq: seqOf(c.frees[q.Addr]), kernel: rec.Name, kind: f.Kind},
				f.Addr, f.Size, c.frees[q.Addr], launch)
			continue
		}
		if r, ok := alloc.FindNear(f.Addr); ok {
			c.record(issueKey{class: ClassOOB, seq: seqOf(c.allocs[r.Addr]), kernel: rec.Name, kind: f.Kind},
				f.Addr, f.Size, c.allocs[r.Addr], launch)
			continue
		}
		c.record(issueKey{class: ClassOOB, kernel: rec.Name, kind: f.Kind}, f.Addr, f.Size, nil, launch)
	}
}

// record folds one fault occurrence into its issue.
func (c *Checker) record(key issueKey, addr gpu.DevicePtr, size uint32, obj *allocation, launch callpath.PathID) {
	is := c.issues[key]
	if is == nil {
		is = &issue{key: key, addr: addr, accessSize: size, obj: obj, accessPath: launch}
		c.issues[key] = is
	}
	is.count++
}

// drainPending converts uninitialized reads accumulated from the in-flight
// kernel's access batches into issues, now that the kernel's API record (and
// with it the launch call path) exists.
func (c *Checker) drainPending(rec *gpu.APIRecord, launch callpath.PathID) {
	if len(c.pending) == 0 {
		return
	}
	var ps []*pendingUninit
	for _, p := range c.pending {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].alloc.seq < ps[j].alloc.seq })
	for _, p := range ps {
		key := issueKey{class: ClassUninitRead, seq: p.alloc.seq, kernel: rec.Name, kind: gpu.AccessRead}
		is := c.issues[key]
		if is == nil {
			is = &issue{key: key, addr: p.addr, accessSize: p.size, obj: p.alloc,
				accessPath: launch, unwritten: p.unwritten}
			c.issues[key] = is
		}
		is.count += p.count
	}
	c.pending = make(map[*allocation]*pendingUninit)
}

// find returns the live allocation containing addr, with a last-hit cache in
// front of the binary search (kernel access streams are heavily clustered).
func (c *Checker) find(addr gpu.DevicePtr) *allocation {
	if a := c.last; a != nil && addr >= a.ptr && addr < a.end() {
		return a
	}
	i := sort.Search(len(c.live), func(i int) bool { return c.live[i].ptr > addr })
	if i == 0 {
		return nil
	}
	a := c.live[i-1]
	if addr >= a.end() {
		return nil
	}
	c.last = a
	return a
}

// markWritten marks the bytes of ranges as written on every overlapping live
// allocation. Copy and set records carry exact ranges; non-instrumented
// kernel records carry object-granularity ranges (and pool-tensor ranges
// when a custom memory map is installed, which this intersection maps back
// onto the backing segment).
func (c *Checker) markWritten(ranges []gpu.Range) {
	for _, r := range ranges {
		if r.Size == 0 {
			continue
		}
		i := sort.Search(len(c.live), func(i int) bool { return c.live[i].end() > r.Addr })
		for ; i < len(c.live) && c.live[i].ptr < r.End(); i++ {
			a := c.live[i]
			if a.shadow == nil {
				continue
			}
			lo := 0
			if r.Addr > a.ptr {
				lo = int(r.Addr - a.ptr)
			}
			hi := int(a.size) - 1
			if r.End() < a.end() {
				hi = int(r.End()-a.ptr) - 1
			}
			a.shadow.SetRange(lo, hi)
		}
	}
}

// insertLive keeps the live slice sorted by address.
func (c *Checker) insertLive(a *allocation) {
	i := sort.Search(len(c.live), func(i int) bool { return c.live[i].ptr > a.ptr })
	c.live = append(c.live, nil)
	copy(c.live[i+1:], c.live[i:])
	c.live[i] = a
}

// removeLive drops a from the live slice and invalidates the cache.
func (c *Checker) removeLive(a *allocation) {
	i := sort.Search(len(c.live), func(i int) bool { return c.live[i].ptr >= a.ptr })
	if i < len(c.live) && c.live[i] == a {
		c.live = append(c.live[:i], c.live[i+1:]...)
	}
	if c.last == a {
		c.last = nil
	}
}

// seqOf is a nil-tolerant allocation sequence accessor (0 = no object).
func seqOf(a *allocation) uint64 {
	if a == nil {
		return 0
	}
	return a.seq
}
