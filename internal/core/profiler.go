// Package core implements the DrGPUM profiler: it wires the online data
// collector to a device, drives the dependency and peak analyses, runs the
// object-level and intra-object pattern detectors, and assembles the final
// report with call paths, inefficiency distances, severities and
// optimization suggestions (paper §4's four-stage workflow).
package core

import (
	"sort"
	"sync"

	"drgpum/internal/advisor"
	"drgpum/internal/costmodel"
	"drgpum/internal/depgraph"
	"drgpum/internal/gpu"
	"drgpum/internal/intraobj"
	"drgpum/internal/memcheck"
	"drgpum/internal/objlevel"
	"drgpum/internal/obs"
	"drgpum/internal/pattern"
	"drgpum/internal/peak"
	"drgpum/internal/pool"
	"drgpum/internal/trace"
)

// Config carries every user-tunable knob the paper describes.
type Config struct {
	// Level selects the analysis granularity: gpu.PatchAPI for object-level
	// analysis only, gpu.PatchFull to add intra-object analysis.
	Level gpu.PatchLevel
	// ObjLevel holds the object-level detector thresholds.
	ObjLevel objlevel.Config
	// IntraObj holds the intra-object detector thresholds.
	IntraObj intraobj.Config
	// TopPeaks is how many memory peaks the analyzer reports (paper: 2).
	TopPeaks int
	// KernelWhitelist restricts intra-object instrumentation to the listed
	// kernel names (paper §5.5). Empty means all kernels.
	KernelWhitelist []string
	// SamplingPeriod instruments every Nth launch of each kernel for
	// intra-object analysis (paper §5.5; Figure 6 uses 100). Values <= 1
	// instrument every launch.
	SamplingPeriod int
	// ObjectIDMode selects the kernel object-identification scheme; the
	// default is the paper's optimized hit-flag design.
	ObjectIDMode gpu.ObjectIDMode
	// DefaultElemSize is assumed for unannotated objects (bytes).
	DefaultElemSize uint32
	// Memcheck attaches the memory-safety checker (internal/memcheck) to
	// the run: the allocator gains red zones and a freed-range quarantine,
	// and the report gains an out-of-bounds / use-after-free /
	// uninitialized-read / leak section. Address layout and the allocator's
	// in-use accounting change under memcheck, so leave it off for the
	// paper's peak-memory and overhead measurements.
	Memcheck bool
	// Obs installs a self-observability recorder (internal/obs): attach,
	// ingestion, finalization, every offline analyzer and the memcheck scan
	// report phase spans and counters into it, and the report carries a
	// snapshot (Report.Obs, Report.Stats). Nil disables self-observability
	// at near-zero cost. Sharing one recorder across several profilers
	// aggregates them (counter updates are atomic; same-name spans merge).
	Obs *obs.Recorder
	// SequentialAnalysis forces the offline analysis stages to run strictly
	// sequentially on one goroutine. The default concurrent pipeline is
	// deterministic (reports are byte-identical either way — the
	// determinism regression tests pin this); the switch exists for
	// debugging and for environments where the analyzer must not spawn
	// goroutines.
	SequentialAnalysis bool
	// Streaming enables incremental kernel-epoch analysis with bounded
	// collector memory and a temporal heat map (Report.Heat). Finish
	// reports stay byte-identical to the offline pipeline; see
	// StreamingConfig.
	Streaming StreamingConfig
	// PipelinedIngest decouples simulation from ingestion inside the run:
	// the device hands filled access batches to a dedicated consumer
	// goroutine over a bounded double-buffered channel and keeps simulating
	// while the hooks work. Reports are byte-identical to synchronous
	// ingestion (the pipelined determinism tests pin this); the win is
	// wall-clock overlap on idle cores.
	PipelinedIngest bool
	// PipelineShards is the number of intra-object shard-worker goroutines
	// used when PipelinedIngest is set: per-object accumulation is routed
	// by ObjectID to the owning worker and merged at kernel-epoch
	// boundaries. 0 keeps accumulation on the consumer goroutine. The
	// engine derives this from its run-level worker budget so -j does not
	// oversubscribe. Reports are byte-identical for any value.
	PipelineShards int
	// CostModel configures the memory-hierarchy cost model (DESIGN.md
	// §4.10). The model is on by default: kernels account per-warp
	// transactions against a modeled L1/L2/DRAM hierarchy, every finding
	// carries a ModeledCycles/CyclesSaved estimate, severity ranks by
	// cycles saved, and the uncoalesced-access detector runs.
	CostModel CostModelConfig
}

// CostModelConfig carries the cost-model knobs (Config.CostModel).
type CostModelConfig struct {
	// Disabled turns the model off: findings carry no cycle estimates,
	// severity falls back to the byte-based formula, and no
	// uncoalesced-access detection runs.
	Disabled bool
	// Spec overrides the model parameters. The zero Spec (SectorBytes ==
	// 0) derives parameters from the attached device (costmodel.SpecFor).
	Spec costmodel.Spec
	// MinWarps is the minimum modeled warp count before the
	// uncoalesced-access detector reports an object; tiny kernels produce
	// unstable transaction ratios. <= 0 selects DefaultUCMinWarps.
	MinWarps int
	// ExcessRatio is the transactions-to-ideal ratio at which an object's
	// kernel traffic counts as uncoalesced. <= 0 selects
	// DefaultUCExcessRatio.
	ExcessRatio float64
}

// DefaultUCMinWarps and DefaultUCExcessRatio are the uncoalesced-access
// detector defaults: at least 4 full warps of evidence, and at least twice
// the coalesced-ideal transaction count. The ratio is a property of the
// access pattern's geometry, not of any cache size, so detection is stable
// across device specs (the Table 1 device-stability test relies on this).
const (
	DefaultUCMinWarps    = 4
	DefaultUCExcessRatio = 2.0
)

// DefaultConfig returns the paper's experimental settings at object-level
// granularity.
func DefaultConfig() Config {
	return Config{
		Level:           gpu.PatchAPI,
		ObjLevel:        objlevel.DefaultConfig(),
		IntraObj:        intraobj.DefaultConfig(),
		TopPeaks:        2,
		DefaultElemSize: 4,
	}
}

// IntraObjectConfig returns DefaultConfig raised to intra-object
// granularity.
func IntraObjectConfig() Config {
	c := DefaultConfig()
	c.Level = gpu.PatchFull
	return c
}

// Profiler is an attached DrGPUM instance. Attach it before the workload
// runs; call Finish afterwards to obtain the report.
type Profiler struct {
	dev       *gpu.Device
	cfg       Config
	collector *trace.Collector
	recorder  *intraobj.Recorder
	checker   *memcheck.Checker
	window    *windowManager // nil unless Config.Streaming.Enabled

	// whitelist and samplePeriod are the instrument-filter inputs, built
	// once at Attach so the filter closure never reconstructs them.
	whitelist    map[string]bool
	samplePeriod uint64

	// obs is Config.Obs (possibly nil); the *Pub fields track how much of
	// each cumulative device statistic has already been published, so
	// repeated analyze passes (Snapshot then Finish) add deltas instead of
	// double-counting on a shared recorder.
	obs           *obs.Recorder
	allocOpsPub   uint64
	evictPub      uint64
	checkedPub    uint64
	pipeBatchPub  uint64
	pipeDepthPub  uint64
	shardTasksPub uint64
	shardsPub     uint64
}

// Attach hooks a profiler up to the device and enables instrumentation at
// the configured level. It must be called before the monitored GPU activity
// starts; APIs invoked earlier are not observed.
func Attach(dev *gpu.Device, cfg Config) *Profiler {
	if cfg.TopPeaks <= 0 {
		cfg.TopPeaks = 2
	}
	if cfg.DefaultElemSize == 0 {
		cfg.DefaultElemSize = 4
	}
	p := &Profiler{dev: dev, cfg: cfg, collector: trace.NewCollector(), obs: cfg.Obs}
	attachSpan := p.obs.Root().Child("attach").Start()
	p.collector.SetObs(p.obs)
	if cfg.Memcheck {
		// Before anything else: the checker reshapes the allocator (red
		// zones, quarantine), which must happen before the first allocation.
		p.checker = memcheck.Attach(dev, memcheck.DefaultConfig())
		p.checker.SetObs(p.obs)
	}
	p.collector.DefaultElemSize = cfg.DefaultElemSize
	p.collector.SetHostTraceMode(cfg.ObjectIDMode == gpu.ObjectIDHostTrace)

	if cfg.Level == gpu.PatchFull {
		p.recorder = intraobj.NewRecorder(dev.Spec().MemoryCapacity)
		p.recorder.LiveBytes = func() uint64 { return dev.MemStats().InUse }
		p.recorder.SetObs(p.obs)
		p.collector.SetSink(p.recorder)
		dev.SetInstrumentFilter(p.instrumentFilter())
	}

	if cfg.CostModel.Disabled {
		dev.DisableCostModel()
	} else {
		dev.SetCostModel(cfg.CostModel.Spec)
	}
	dev.SetObjectIDMode(cfg.ObjectIDMode)
	// The hit-flag object table must come from the profiler's memory map M,
	// not the raw allocator, so pool tensors (paper §5.4) resolve correctly.
	dev.SetLiveRangesProvider(p.collector.LiveRanges)
	dev.AddHook(p.collector)
	if cfg.Streaming.Enabled {
		// After the collector: the window manager's OnAPI must see the
		// just-appended APIInfo with final touch sets.
		p.window = newWindowManager(p.collector.Trace(), p.recorder, cfg)
		dev.AddHook(p.window)
	}
	dev.SetPatchLevel(cfg.Level)
	if cfg.PipelinedIngest {
		// Last, after every hook is registered: the pipeline consumer
		// snapshots the hook list. Shard workers only make sense with the
		// pipeline in front of them (the router runs on its consumer).
		if p.recorder != nil && cfg.PipelineShards > 0 {
			p.recorder.StartShards(cfg.PipelineShards)
		}
		dev.StartPipelinedIngest()
	}
	attachSpan.End()
	return p
}

// Observability returns the configured self-observability recorder (nil
// when Config.Obs was not set), for embedders that want live snapshots.
func (p *Profiler) Observability() *obs.Recorder { return p.obs }

// AttachPool integrates a custom memory allocator (the caching Pool, the
// BFC arena, or any other pool.Observable): backing segments the allocator
// reserves are delisted from the memory map so that kernel accesses and
// pattern analysis operate on the allocator's tensors instead (paper
// §5.4). Call it right after creating the allocator, before any
// allocation activity.
func (p *Profiler) AttachPool(pl pool.Observable) {
	pl.Register(func(ev pool.Event) {
		if ev.Kind == pool.EventSegment {
			p.collector.MarkPoolSegment(ev.Ptr)
		}
	})
}

// instrumentFilter combines the kernel whitelist and sampling period. The
// map and period are built once (first call) and reused, so repeated
// attach/filter paths don't reconstruct them.
func (p *Profiler) instrumentFilter() func(kernel string, launch uint64) bool {
	if p.whitelist == nil {
		p.whitelist = make(map[string]bool, len(p.cfg.KernelWhitelist))
		for _, k := range p.cfg.KernelWhitelist {
			p.whitelist[k] = true
		}
		p.samplePeriod = 1
		if p.cfg.SamplingPeriod > 1 {
			p.samplePeriod = uint64(p.cfg.SamplingPeriod)
		}
	}
	return func(kernel string, launch uint64) bool {
		if len(p.whitelist) > 0 && !p.whitelist[kernel] {
			return false
		}
		return launch%p.samplePeriod == 0
	}
}

// ForceHostAccessMaps makes the intra-object recorder behave as if the
// device had no spare memory for access maps, forcing the host-side update
// path of the paper's adaptive scheme (§5.5). It exists for the ablation
// experiments and is a no-op at object-level granularity.
func (p *Profiler) ForceHostAccessMaps() {
	if p.recorder != nil {
		p.recorder.CapacityBytes = 1
	}
}

// Annotate labels the live object based at ptr with an application-facing
// name and element size (0 keeps the default). It reports whether a live
// object starts at ptr.
func (p *Profiler) Annotate(ptr gpu.DevicePtr, label string, elemSize uint32) bool {
	if p.checker != nil {
		p.checker.Annotate(ptr, label)
	}
	return p.collector.Annotate(ptr, label, elemSize)
}

// Collector exposes the underlying collector (used by the custom-pool
// bridge of paper §5.4).
func (p *Profiler) Collector() *trace.Collector { return p.collector }

// Finish stops collection, runs the offline analyses and returns the
// report. It is idempotent in effect but must not race with device use.
func (p *Profiler) Finish() *Report {
	p.dev.SetPatchLevel(gpu.PatchNone)
	// Tear down outside-in: join the batch consumer first (no more batches
	// can arrive), then close the trailing window (which drains the shard
	// workers at its merge point), then join the shard workers so analysis
	// reads settled per-object state.
	p.dev.StopPipelinedIngest()
	if p.window != nil {
		// Close the trailing partial window; no more APIs can arrive.
		p.window.finish()
	}
	if p.recorder != nil {
		p.recorder.StopIngest()
	}
	return p.analyze()
}

// Snapshot runs the full analysis over everything collected so far and
// returns a report, without detaching the profiler — the paper's "online
// pattern detector" view, usable for live dashboards or mid-run
// checkpoints. Call it between GPU APIs (not from inside a kernel body):
// the intra-object maps of an in-flight kernel would otherwise be split
// across two observation windows. Leak and late-deallocation findings in a
// snapshot describe the state *so far* — an object the program frees later
// is still reported unfreed here. The returned Report's Findings, Peaks and
// statistics are point-in-time; its Trace field is a live view that keeps
// growing as collection continues.
func (p *Profiler) Snapshot() *Report {
	return p.analyze()
}

// analyze builds a report from the current collection state.
//
// The offline stages run as a two-step concurrent pipeline (the online
// collector is untouched — only the post-run analysis parallelizes):
//
//  1. depgraph.Annotate runs first and alone: it writes APIInfo.Topo, which
//     every later stage reads.
//  2. peak analysis, the object-level detectors and the intra-object
//     detectors are mutually independent — peak and objlevel only read the
//     trace, and the intra-object recorder mutates nothing but itself — so
//     they run concurrently.
//  3. The advisor's marginal-savings scan (itself fanned out per finding)
//     and the aggregate what-if estimate both only read the trace and the
//     findings, so they run concurrently too.
//
// Every stage writes to its own variable and the findings are concatenated
// and decorated in a fixed order, so the report is byte-identical to the
// sequential pipeline (Config.SequentialAnalysis; pinned by the determinism
// regression tests).
func (p *Profiler) analyze() *Report {
	// an is the analyze span-tree node (nil without observability); each
	// stage below opens a child span so per-analyzer self-time shows up in
	// the phase breakdown. Stage spans aggregate by name, so a concurrent
	// pass and a sequential pass record identical counts.
	an := p.obs.Root().Child("analyze")
	anSpan := an.Start()
	t := p.collector.Trace()

	// Streaming runs the same stages over incrementally maintained state:
	// timestamps and the dependency summary were assigned at arrival, the
	// peak miner runs over a timeline bounded by the tracked maximum
	// timestamp, and the object-level detectors read the arrival-time
	// accumulator instead of walking (possibly compacted) access lists.
	// Each branch funnels into the code path the offline pipeline uses, so
	// reports stay byte-identical (pinned by the streaming determinism
	// tests).
	var g *depgraph.Graph
	if p.window != nil {
		staged(an, "depgraph", func() { g = p.window.inc.Graph() })
	} else {
		staged(an, "depgraph", func() { g = depgraph.Annotate(t) })
	}

	costSpec, costOn := p.dev.CostModelSpec()

	var pk *peak.Analysis
	var objFindings, intraFindings, costFindings []pattern.Finding
	var modeStats intraobj.ModeStats
	p.runStages(
		func() {
			staged(an, "peak", func() {
				if p.window != nil {
					pk = peak.AnalyzeTimeline(t, p.cfg.TopPeaks, t.LiveBytesTimelineTo(p.window.maxTopo))
				} else {
					pk = peak.Analyze(t, p.cfg.TopPeaks)
				}
			})
		},
		func() {
			staged(an, "objlevel", func() {
				if p.window != nil {
					objFindings = objlevel.DetectStreamed(t, p.cfg.ObjLevel, p.window.acc)
				} else {
					objFindings = objlevel.Detect(t, p.cfg.ObjLevel)
				}
			})
		},
		func() {
			if p.recorder != nil {
				staged(an, "intraobj", func() {
					intraFindings = p.recorder.Detect(p.cfg.IntraObj)
					modeStats = p.recorder.Stats()
				})
			}
		},
		func() {
			if costOn {
				staged(an, "costmodel", func() {
					costFindings = detectUncoalesced(t, costSpec, p.cfg.CostModel)
				})
			}
		},
	)
	findings := append(objFindings, intraFindings...)
	findings = append(findings, costFindings...)

	var marginal []uint64
	var advice advisor.Estimate
	p.runStages(
		func() {
			staged(an, "marginal", func() {
				if p.cfg.SequentialAnalysis {
					marginal = advisor.MarginalSavingsSequential(t, findings)
				} else {
					marginal = advisor.MarginalSavings(t, findings)
				}
			})
		},
		func() { staged(an, "advise", func() { advice = advisor.Advise(t, findings) }) },
	)

	for i := range findings {
		f := &findings[i]
		f.OnPeak = pk.OnPeak(f.Object)
		f.PeakSavingsBytes = marginal[i]
		f.Suggestion = pattern.Suggest(t, f)
		if costOn {
			attachCycles(t, costSpec, f)
			f.Severity = severityCycles(f)
		} else {
			f.Severity = severity(f)
		}
	}
	sort.SliceStable(findings, func(i, j int) bool {
		if findings[i].Severity != findings[j].Severity {
			return findings[i].Severity > findings[j].Severity
		}
		if findings[i].Object != findings[j].Object {
			return findings[i].Object < findings[j].Object
		}
		return findings[i].Pattern < findings[j].Pattern
	})

	var mc *memcheck.Report
	if p.checker != nil {
		mc = p.checker.Report()
	}
	anSpan.End()

	rep := &Report{
		Device:    p.dev.Spec().Name,
		Trace:     t,
		Graph:     g,
		Peaks:     pk,
		Findings:  findings,
		MemStats:  p.dev.MemStats(),
		Elapsed:   p.dev.Elapsed(),
		ModeStats: modeStats,
		Recorder:  p.recorder,
		WhatIf:    advice,
		Memcheck:  mc,
	}
	if costOn {
		rep.CostModel = &costSpec
	}
	if p.window != nil {
		rep.Heat = p.window.Heat()
	}
	if p.obs.Enabled() {
		p.publishCounters(rep, pk)
		snap := p.obs.Snapshot()
		rep.Obs = &snap
	}
	return rep
}

// staged wraps one analysis stage in a span named under the analyze node.
func staged(an *obs.Node, name string, fn func()) {
	sp := an.Child(name).Start()
	fn()
	sp.End()
}

// publishCounters feeds the per-pass and cumulative counters after an
// analysis pass. Cumulative device statistics (allocator ops, quarantine
// evictions, memcheck reads) publish as deltas against the previous pass so
// shared recorders are never double-counted; per-pass quantities (peak
// candidates, findings per pattern) count each pass, matching how engine
// aggregation sums passes across runs.
func (p *Profiler) publishCounters(rep *Report, pk *peak.Analysis) {
	p.obs.Add(obs.CtrPeakCandidates, uint64(pk.Candidates))

	perPattern := make(map[pattern.Pattern]uint64)
	for i := range rep.Findings {
		perPattern[rep.Findings[i].Pattern]++
	}
	for _, pat := range pattern.All() {
		p.obs.AddNamed("findings/"+pat.Abbrev(), perPattern[pat])
	}

	ms := rep.MemStats
	allocOps := ms.TotalAllocations + (ms.TotalAllocations - uint64(ms.LiveAllocations))
	p.obs.Add(obs.CtrAllocOps, allocOps-p.allocOpsPub)
	p.allocOpsPub = allocOps
	p.obs.Add(obs.CtrQuarantineEvict, ms.QuarantineEvictions-p.evictPub)
	p.evictPub = ms.QuarantineEvictions
	if rep.Memcheck != nil {
		p.obs.AddNamed("memcheck/reads checked", rep.Memcheck.AccessesChecked-p.checkedPub)
		p.checkedPub = rep.Memcheck.AccessesChecked
	}
	if p.cfg.PipelinedIngest {
		ps := p.dev.PipelineStats()
		p.obs.AddNamed(obs.NamedPipelineBatches, ps.Batches-p.pipeBatchPub)
		p.pipeBatchPub = ps.Batches
		if hw := uint64(ps.DepthHighWater); hw > p.pipeDepthPub {
			p.obs.AddNamed(obs.NamedPipelineDepthHW, hw-p.pipeDepthPub)
			p.pipeDepthPub = hw
		}
		if p.recorder != nil {
			is := p.recorder.IngestStats()
			p.obs.AddNamed(obs.NamedPipelineShardTasks, is.Tasks-p.shardTasksPub)
			p.shardTasksPub = is.Tasks
			if sh := uint64(is.Shards); sh > p.shardsPub {
				p.obs.AddNamed(obs.NamedPipelineShards, sh-p.shardsPub)
				p.shardsPub = sh
			}
		}
	}
}

// runStages executes the given independent analysis stages, concurrently by
// default or in order under Config.SequentialAnalysis. The first stage runs
// on the calling goroutine either way.
func (p *Profiler) runStages(stages ...func()) {
	if p.cfg.SequentialAnalysis {
		for _, s := range stages {
			s()
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(stages) - 1)
	for _, s := range stages[1:] {
		go func() {
			defer wg.Done()
			s()
		}()
	}
	stages[0]()
	wg.Wait()
}

// severity ranks findings for report order: wasted bytes scaled by the
// inefficiency distance, doubled for objects on a reported memory peak
// (the paper prioritizes peak-involved objects, §4), and boosted by the
// advisor's estimate of the peak reduction this fix alone delivers — the
// strongest prioritization signal, since it measures the actual benefit
// rather than a proxy.
func severity(f *pattern.Finding) float64 {
	s := float64(f.WastedBytes)
	if f.Distance > 0 {
		s *= 1 + float64(f.Distance)/64
	}
	if f.Pattern == pattern.NonUniformAccessFrequency {
		// NUAF is a performance pattern, not a wastage pattern; rank by
		// variation magnitude instead of bytes.
		s = f.VariationPct * 1024
	}
	if f.OnPeak {
		s *= 2
	}
	s += 2 * float64(f.PeakSavingsBytes)
	return s
}
