package core_test

import (
	"encoding/json"
	"testing"

	"drgpum/internal/core"
	"drgpum/internal/gpu"
	"drgpum/internal/workloads"
)

// collectedProfiler runs a workload once at intra-object granularity and
// returns the still-attached profiler, so Snapshot() re-runs the offline
// analysis pipeline over a fixed collection state.
func collectedProfiler(tb testing.TB, name string, sequential bool) *core.Profiler {
	tb.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		tb.Fatalf("unknown workload %s", name)
	}
	dev := gpu.NewDevice(gpu.SpecRTX3090())
	cfg := core.IntraObjectConfig()
	cfg.KernelWhitelist = w.IntraKernels
	cfg.SequentialAnalysis = sequential
	prof := core.Attach(dev, cfg)
	if err := w.Run(dev, prof, workloads.VariantNaive); err != nil {
		tb.Fatal(err)
	}
	return prof
}

// BenchmarkAnalyzePipeline measures the offline analysis alone — dependency
// graph, peak mining, object-level and intra-object detection, marginal
// savings and suggestion rendering — decoupled from collection.
func BenchmarkAnalyzePipeline(b *testing.B) {
	for _, name := range []string{"simplemulticopy", "rodinia/huffman", "minimdock"} {
		b.Run(name+"/parallel", func(b *testing.B) {
			prof := collectedProfiler(b, name, false)
			b.ReportAllocs()
			b.ResetTimer()
			var n int
			for i := 0; i < b.N; i++ {
				n = len(prof.Snapshot().Findings)
			}
			b.ReportMetric(float64(n), "findings")
		})
		b.Run(name+"/sequential", func(b *testing.B) {
			prof := collectedProfiler(b, name, true)
			b.ReportAllocs()
			b.ResetTimer()
			var n int
			for i := 0; i < b.N; i++ {
				n = len(prof.Snapshot().Findings)
			}
			b.ReportMetric(float64(n), "findings")
		})
	}
}

// BenchmarkReportJSON measures report serialization (the drgpum -json path).
func BenchmarkReportJSON(b *testing.B) {
	prof := collectedProfiler(b, "simplemulticopy", false)
	rep := prof.Finish()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(rep); err != nil {
			b.Fatal(err)
		}
	}
}
