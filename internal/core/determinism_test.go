package core_test

import (
	"bytes"
	"encoding/json"
	"testing"
)

// profiledJSON profiles the named workload from scratch and returns the
// serialized report.
func profiledJSON(t *testing.T, name string, sequential bool) []byte {
	t.Helper()
	prof := collectedProfiler(t, name, sequential)
	out, err := json.Marshal(prof.Finish())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestAnalysisDeterminism pins DESIGN.md §4.1: profiling the same workload
// must yield byte-identical JSON reports across runs, and the concurrent
// analysis pipeline must produce exactly the bytes the sequential one does.
// Any ordering leak from the parallel stages (goroutine completion order,
// map iteration, non-deterministic merge) shows up here as a diff.
func TestAnalysisDeterminism(t *testing.T) {
	for _, name := range []string{"simplemulticopy", "rodinia/huffman", "polybench/bicg"} {
		t.Run(name, func(t *testing.T) {
			first := profiledJSON(t, name, false)
			again := profiledJSON(t, name, false)
			if !bytes.Equal(first, again) {
				t.Errorf("two parallel-analysis runs differ (%d vs %d bytes)", len(first), len(again))
			}
			seq := profiledJSON(t, name, true)
			if !bytes.Equal(first, seq) {
				t.Errorf("parallel and sequential analysis differ (%d vs %d bytes)", len(first), len(seq))
			}
		})
	}
}
