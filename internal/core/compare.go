package core

import (
	"fmt"
	"io"

	"drgpum/internal/pattern"
)

// FindingDelta describes one finding's fate between two profiles of the
// same program (e.g. before and after applying fixes). Findings are
// matched by pattern and object display name, since object IDs are
// run-local.
type FindingDelta struct {
	Pattern pattern.Pattern
	Object  string
	// Fixed is true when the finding exists in the baseline but not in the
	// candidate.
	Fixed bool
}

// Comparison is the outcome of Compare.
type Comparison struct {
	// BaselinePeak and CandidatePeak are the data-object peaks.
	BaselinePeak  uint64
	CandidatePeak uint64
	// PeakReductionPct is positive when the candidate improved.
	PeakReductionPct float64
	// BaselineCycles and CandidateCycles are simulated times; Speedup is
	// their ratio (>1 when the candidate is faster).
	BaselineCycles  uint64
	CandidateCycles uint64
	Speedup         float64
	// Deltas lists every baseline finding with its fate, in the baseline's
	// severity order.
	Deltas []FindingDelta
	// Introduced lists findings present only in the candidate.
	Introduced []FindingDelta
	// FixedCount and RemainingCount summarize Deltas.
	FixedCount     int
	RemainingCount int
}

// matchKey builds the cross-run identity of a finding.
func matchKey(rep *Report, f *pattern.Finding) string {
	return f.Pattern.Abbrev() + "/" + rep.Trace.Object(f.Object).DisplayName()
}

// Compare evaluates a candidate profile against a baseline — the Table 4
// methodology as a library call. Both reports should come from the same
// program (the baseline typically naive, the candidate optimized).
func Compare(baseline, candidate *Report) Comparison {
	c := Comparison{
		BaselinePeak:    baseline.Peaks.PeakBytes,
		CandidatePeak:   candidate.Peaks.PeakBytes,
		BaselineCycles:  baseline.Elapsed,
		CandidateCycles: candidate.Elapsed,
	}
	if c.BaselinePeak > 0 {
		c.PeakReductionPct = (float64(c.BaselinePeak) - float64(c.CandidatePeak)) / float64(c.BaselinePeak) * 100
	}
	if c.CandidateCycles > 0 {
		c.Speedup = float64(c.BaselineCycles) / float64(c.CandidateCycles)
	}

	inCandidate := map[string]bool{}
	for i := range candidate.Findings {
		inCandidate[matchKey(candidate, &candidate.Findings[i])] = true
	}
	inBaseline := map[string]bool{}
	for i := range baseline.Findings {
		f := &baseline.Findings[i]
		key := matchKey(baseline, f)
		inBaseline[key] = true
		d := FindingDelta{
			Pattern: f.Pattern,
			Object:  baseline.Trace.Object(f.Object).DisplayName(),
			Fixed:   !inCandidate[key],
		}
		if d.Fixed {
			c.FixedCount++
		} else {
			c.RemainingCount++
		}
		c.Deltas = append(c.Deltas, d)
	}
	for i := range candidate.Findings {
		f := &candidate.Findings[i]
		if !inBaseline[matchKey(candidate, f)] {
			c.Introduced = append(c.Introduced, FindingDelta{
				Pattern: f.Pattern,
				Object:  candidate.Trace.Object(f.Object).DisplayName(),
			})
		}
	}
	return c
}

// Render writes the comparison in the CLI diff layout.
func (c Comparison) Render(w io.Writer) {
	fmt.Fprintf(w, "  data-object peak: %d -> %d bytes", c.BaselinePeak, c.CandidatePeak)
	if c.PeakReductionPct > 0 {
		fmt.Fprintf(w, " (-%.0f%%)", c.PeakReductionPct)
	} else if c.PeakReductionPct < 0 {
		fmt.Fprintf(w, " (+%.0f%%)", -c.PeakReductionPct)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  simulated time:   %d -> %d cycles", c.BaselineCycles, c.CandidateCycles)
	if c.Speedup > 1.005 {
		fmt.Fprintf(w, " (%.2fx speedup)", c.Speedup)
	}
	fmt.Fprintln(w)
	for _, d := range c.Deltas {
		state := "remains"
		if d.Fixed {
			state = "fixed"
		}
		fmt.Fprintf(w, "  [%-7s] %-28s %s\n", state, d.Pattern, d.Object)
	}
	for _, d := range c.Introduced {
		fmt.Fprintf(w, "  [new    ] %-28s %s\n", d.Pattern, d.Object)
	}
	fmt.Fprintf(w, "  %d finding(s) eliminated, %d remaining, %d introduced\n",
		c.FixedCount, c.RemainingCount, len(c.Introduced))
}
