package core

import (
	"fmt"
	"io"
	"strings"
)

// Format selects a Report.Export output format — the one exporter entry
// point unifying the historically separate Render/ExportGUI/ExportHTML/
// SaveProfile paths (each of which remains as a one-line delegate).
type Format uint8

const (
	// FormatText is the human-readable report (Render without verbose).
	FormatText Format = iota
	// FormatGUI is the Perfetto/Chrome-trace JSON export (liveness.json).
	FormatGUI
	// FormatHTML is the self-contained HTML report.
	FormatHTML
	// FormatProfile is the saved-profile form AnalyzeProfile re-reads.
	FormatProfile
	// FormatStats is the self-observability summary (Report.Stats).
	FormatStats
)

// String names the format.
func (f Format) String() string {
	switch f {
	case FormatText:
		return "text"
	case FormatGUI:
		return "gui"
	case FormatHTML:
		return "html"
	case FormatProfile:
		return "profile"
	case FormatStats:
		return "stats"
	default:
		return fmt.Sprintf("Format(%d)", uint8(f))
	}
}

// exporters holds the renderer-package exporters (GUI, HTML). They are
// registered from init functions — internal/gui registers FormatGUI and
// FormatHTML — so core does not import its own renderers. The public
// drgpum package imports internal/gui, so both formats are always
// registered for external callers.
var exporters = map[Format]func(*Report, io.Writer) error{}

// RegisterExporter installs the exporter for a format. Call from an init
// function; later registrations for the same format win.
func RegisterExporter(f Format, fn func(*Report, io.Writer) error) {
	exporters[f] = fn
}

// Formats returns every format Export can currently produce, in
// declaration order: the built-in formats (text, profile, stats) plus
// whichever renderer formats have a registered exporter. Iteration is
// over the fixed enum, never the registration map, so the order is
// deterministic (the serve report endpoint renders it into error
// messages and tests sweep it).
func Formats() []Format {
	all := []Format{FormatText, FormatGUI, FormatHTML, FormatProfile, FormatStats}
	out := make([]Format, 0, len(all))
	for _, f := range all {
		switch f {
		case FormatText, FormatProfile, FormatStats:
			out = append(out, f)
		default:
			if _, ok := exporters[f]; ok {
				out = append(out, f)
			}
		}
	}
	return out
}

// ParseFormat resolves a format name (the Format.String form, as used by
// the serve report endpoint's ?format= parameter) to its Format. Only
// formats Export can currently produce resolve.
func ParseFormat(name string) (Format, bool) {
	for _, f := range Formats() {
		if f.String() == name {
			return f, true
		}
	}
	return 0, false
}

// Export writes the report to w in the requested format. Every legacy
// entry point (Render, SaveProfile, drgpum.ExportGUI, drgpum.ExportHTML)
// produces byte-identical output to the corresponding format here.
func (r *Report) Export(w io.Writer, f Format) error {
	switch f {
	case FormatText:
		r.Render(w, false)
		return nil
	case FormatProfile:
		return r.SaveProfile(w)
	case FormatStats:
		_, err := io.WriteString(w, r.Stats())
		return err
	}
	if fn, ok := exporters[f]; ok {
		return fn(r, w)
	}
	return fmt.Errorf("core: no exporter registered for format %s (import drgpum or drgpum/internal/gui)", f)
}

// Stats renders the report's self-observability snapshot as text: counters
// plus the phase span tree with occurrence counts. Wall-clock fields are
// excluded, so the output is byte-identical across runs of a deterministic
// workload (use drgpum-overhead -stats, or Obs.WriteText with wall enabled,
// for self-time). Without Config.Obs it returns a one-line notice.
func (r *Report) Stats() string {
	if r.Obs == nil {
		return "self-observability: disabled (set Config.Obs or use drgpum.WithObservability)\n"
	}
	var b strings.Builder
	r.Obs.WriteText(&b, false)
	return b.String()
}
