package core

import (
	"errors"
	"io"
	"sort"

	"drgpum/internal/advisor"
	"drgpum/internal/depgraph"
	"drgpum/internal/gpu"
	"drgpum/internal/objlevel"
	"drgpum/internal/pattern"
	"drgpum/internal/peak"
	"drgpum/internal/profile"
	"drgpum/internal/trace"
)

// errStreamedProfile is returned by SaveProfile for streamed traces.
var errStreamedProfile = errors.New("core: streamed trace has retired its access history; profiles require an offline (non-streaming) run")

// SaveProfile serializes the report's trace and run metadata as a profile
// file that AnalyzeProfile can re-analyze later — the persistent form of
// the paper's online-collector/offline-analyzer split (§4). Streamed traces
// cannot be saved: window retirement already discarded the per-invocation
// payloads a profile round-trips.
func (r *Report) SaveProfile(w io.Writer) error {
	if r.Trace.Streamed {
		return errStreamedProfile
	}
	return profile.Save(r.Trace, profile.Meta{
		Device:    r.Device,
		Cycles:    r.Elapsed,
		PeakBytes: r.MemStats.Peak,
	}, w)
}

// AnalyzeProfile loads a saved profile and re-runs the offline analyses —
// dependency ordering, peak mining, and the object-level detectors — under
// the given thresholds. Because every §3 threshold is user-tunable, this
// lets a saved run be re-examined under different settings without
// re-executing the application. Intra-object findings are an online
// product (the access maps live only during the run) and are not
// recomputed; re-analysis covers the seven object-level patterns.
func AnalyzeProfile(rd io.Reader, cfg Config) (*Report, error) {
	t, meta, err := profile.Load(rd)
	if err != nil {
		return nil, err
	}
	if cfg.TopPeaks <= 0 {
		cfg.TopPeaks = 2
	}
	return analyzeLoaded(t, meta, cfg), nil
}

// analyzeLoaded runs the offline pipeline over a loaded trace.
func analyzeLoaded(t *trace.Trace, meta profile.Meta, cfg Config) *Report {
	g := depgraph.Annotate(t)
	pk := peak.Analyze(t, cfg.TopPeaks)
	findings := objlevel.Detect(t, cfg.ObjLevel)

	marginal := advisor.MarginalSavings(t, findings)
	for i := range findings {
		f := &findings[i]
		f.OnPeak = pk.OnPeak(f.Object)
		f.PeakSavingsBytes = marginal[i]
		f.Suggestion = pattern.Suggest(t, f)
		f.Severity = severity(f)
	}
	sort.SliceStable(findings, func(i, j int) bool {
		if findings[i].Severity != findings[j].Severity {
			return findings[i].Severity > findings[j].Severity
		}
		if findings[i].Object != findings[j].Object {
			return findings[i].Object < findings[j].Object
		}
		return findings[i].Pattern < findings[j].Pattern
	})

	return &Report{
		Device:   meta.Device,
		Trace:    t,
		Graph:    g,
		Peaks:    pk,
		Findings: findings,
		MemStats: gpu.AllocStats{Peak: meta.PeakBytes},
		Elapsed:  meta.Cycles,
		WhatIf:   advisor.Advise(t, findings),
	}
}
