package core

import (
	"fmt"
	"io"
	"strings"
)

// RenderTimeline draws the paper's Figure 2 mental model as text: one row
// per data object at the top memory peaks, one column per topological
// timestamp, with the object's lifetime and accesses marked:
//
//	[  object allocated        ]  object freed
//	x  accessed by the GPU API at that timestamp
//	-  allocated but idle
//	(blank) not allocated
//
// The API lane above the grid prints each timestamp's API label vertically
// abbreviated as its kind initial (A=alloc, F=free, C=copy, S=set,
// K=kernel; '*' when several APIs share a timestamp across streams).
//
// Long traces are clipped at timelineMaxColumns timestamps (with a note),
// so the render — and its per-row buffers — stays bounded instead of
// growing one column per timestamp.
func (r *Report) RenderTimeline(w io.Writer) {
	var maxTopo uint64
	for _, a := range r.Trace.APIs {
		if a.Topo > maxTopo {
			maxTopo = a.Topo
		}
	}
	full := int(maxTopo) + 1
	if full == 0 || len(r.Trace.APIs) == 0 {
		fmt.Fprintln(w, "(empty trace)")
		return
	}
	width := full
	clipped := width > timelineMaxColumns
	if clipped {
		width = timelineMaxColumns
	}

	// API lane: kind initials per timestamp.
	lane := make([]byte, width)
	for i := range lane {
		lane[i] = ' '
	}
	for _, a := range r.Trace.APIs {
		if a.Topo >= uint64(width) {
			continue
		}
		c := a.Rec.Kind.String()[0] // A, F, C, S, K
		if lane[a.Topo] == ' ' {
			lane[a.Topo] = c
		} else if lane[a.Topo] != c {
			lane[a.Topo] = '*'
		}
	}

	// Objects: those live at the reported peaks, in ID order; fall back to
	// every object for small traces.
	ids := map[int]bool{}
	for _, p := range r.Peaks.Peaks {
		for _, id := range p.Live {
			ids[int(id)] = true
		}
	}
	if len(ids) == 0 || len(r.Trace.Objects) <= 16 {
		for i := range r.Trace.Objects {
			ids[i] = true
		}
	}

	nameWidth := 12
	for i := range r.Trace.Objects {
		if !ids[i] {
			continue
		}
		if n := len(r.Trace.Objects[i].DisplayName()); n > nameWidth {
			nameWidth = n
		}
	}

	fmt.Fprintf(w, "%-*s  T=0%s\n", nameWidth, "GPU APIs", strings.Repeat(" ", max(0, width-4)))
	fmt.Fprintf(w, "%-*s  %s\n", nameWidth, "", string(lane))

	for i, o := range r.Trace.Objects {
		if !ids[i] {
			continue
		}
		row := make([]byte, width)
		for c := range row {
			row[c] = ' '
		}
		start := r.Trace.API(o.AllocAPI).Topo
		end := uint64(full - 1)
		if o.Freed() {
			end = r.Trace.API(uint64(o.FreeAPI)).Topo
		}
		for ts := start; ts <= end && ts < uint64(width); ts++ {
			row[ts] = '-'
		}
		if start < uint64(width) {
			row[start] = '['
		}
		if o.Freed() && end < uint64(width) {
			row[end] = ']'
		}
		for _, ev := range o.Accesses {
			if ts := r.Trace.API(ev.API).Topo; ts < uint64(width) {
				row[ts] = 'x'
			}
		}
		fmt.Fprintf(w, "%-*s  %s\n", nameWidth, o.DisplayName(), string(row))
	}
	fmt.Fprintf(w, "%-*s  %s\n", nameWidth, "",
		legendFor(width))
	if clipped {
		fmt.Fprintf(w, "%-*s  (clipped: showing T=0..%d of %d timestamps)\n",
			nameWidth, "", width-1, full)
	}
}

// timelineMaxColumns bounds the rendered timestamp columns; beyond it the
// grid is clipped with a note instead of producing arbitrarily wide rows.
const timelineMaxColumns = 160

// legendFor prints the legend, trimmed to the grid width when narrow.
func legendFor(width int) string {
	legend := "[ alloc  ] free  x access  - live"
	if width < len(legend) {
		return legend
	}
	return legend
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
