package core

import (
	"encoding/json"
	"strings"
	"testing"

	"drgpum/internal/gpu"
	"drgpum/internal/pattern"
	"drgpum/internal/pool"
)

// profileFixture builds a report with several findings and a pool tensor.
func profileFixture(t *testing.T) *Report {
	t.Helper()
	dev := gpu.NewDevice(gpu.SpecTest())
	p := Attach(dev, IntraObjectConfig())

	big, err := dev.Malloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	p.Annotate(big, "big_unused", 4)
	small, err := dev.Malloc(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	p.Annotate(small, "small_unused", 4)

	used, err := dev.Malloc(4 << 10)
	if err != nil {
		t.Fatal(err)
	}
	p.Annotate(used, "used", 4)
	if err := dev.LaunchFunc(nil, "k", gpu.Dim1(1), gpu.Dim1(1), func(ctx *gpu.ExecContext) {
		for i := 0; i < 1024; i++ {
			ctx.StoreU32(used+gpu.DevicePtr(i*4), uint32(i))
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := dev.Free(used); err != nil {
		t.Fatal(err)
	}
	return p.Finish()
}

func TestSeverityOrdersByWastedBytes(t *testing.T) {
	rep := profileFixture(t)
	// Both unused objects leak and are unused; the larger one must rank
	// first among equal patterns.
	var sawBig, sawSmall int = -1, -1
	for i := range rep.Findings {
		name := rep.Trace.Object(rep.Findings[i].Object).Label
		if rep.Findings[i].Pattern == pattern.UnusedAllocation {
			if name == "big_unused" {
				sawBig = i
			}
			if name == "small_unused" {
				sawSmall = i
			}
		}
	}
	if sawBig == -1 || sawSmall == -1 {
		t.Fatalf("missing UA findings: %v", rep.Findings)
	}
	if sawBig > sawSmall {
		t.Errorf("big object ranked below small one (%d vs %d)", sawBig, sawSmall)
	}
	if !rep.Findings[0].OnPeak {
		t.Error("top finding not on the memory peak")
	}
}

func TestReportJSON(t *testing.T) {
	rep := profileFixture(t)
	data, err := rep.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, key := range []string{"device", "gpu_apis", "data_objects", "peak_bytes", "findings"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("JSON missing %q", key)
		}
	}
	findings := decoded["findings"].([]any)
	if len(findings) != len(rep.Findings) {
		t.Errorf("JSON findings = %d, want %d", len(findings), len(rep.Findings))
	}
	first := findings[0].(map[string]any)
	if first["suggestion"] == "" || first["object"] == "" {
		t.Errorf("finding JSON incomplete: %v", first)
	}
	if _, ok := first["alloc_site"]; !ok {
		t.Error("finding JSON missing alloc_site")
	}
}

func TestRenderVerboseIncludesCallPaths(t *testing.T) {
	rep := profileFixture(t)
	var terse, verbose strings.Builder
	rep.Render(&terse, false)
	rep.Render(&verbose, true)
	if !strings.Contains(verbose.String(), "allocated at:") {
		t.Error("verbose render missing call paths")
	}
	if strings.Contains(terse.String(), "allocated at:") {
		t.Error("terse render leaked call paths")
	}
	// Profiler-internal frames (including this package, where the fixture
	// lives) are trimmed; the surviving frames are the caller's context.
	if strings.Contains(verbose.String(), "internal/gpu.") {
		t.Error("render leaked profiler-internal frames")
	}
	if !strings.Contains(verbose.String(), "testing.tRunner") {
		t.Error("call path lost the application frames entirely")
	}
}

func TestPatternSetAndQueries(t *testing.T) {
	rep := profileFixture(t)
	set := rep.PatternSet()
	if len(set) == 0 {
		t.Fatal("empty pattern set")
	}
	// Table order is preserved.
	for i := 1; i < len(set); i++ {
		if set[i-1] >= set[i] {
			t.Errorf("pattern set out of order: %v", set)
		}
	}
	if !rep.HasPattern(pattern.UnusedAllocation) || rep.HasPattern(pattern.DeadWrite) {
		t.Errorf("HasPattern answers wrong: %v", set)
	}
	if got := rep.PatternsForObject("nonexistent"); len(got) != 0 {
		t.Errorf("unknown object patterns = %v", got)
	}
	rep.SortFindingsByObject()
	for i := 1; i < len(rep.Findings); i++ {
		if rep.Findings[i-1].Object > rep.Findings[i].Object {
			t.Error("SortFindingsByObject did not sort")
		}
	}
}

func TestWhitelistLimitsIntraObjectAnalysis(t *testing.T) {
	run := func(whitelist []string) *Report {
		dev := gpu.NewDevice(gpu.SpecTest())
		cfg := IntraObjectConfig()
		cfg.KernelWhitelist = whitelist
		p := Attach(dev, cfg)
		buf, _ := dev.Malloc(4 << 10)
		p.Annotate(buf, "buf", 4)
		// Only the first 16 elements touched: overallocation if observed.
		_ = dev.LaunchFunc(nil, "sparse", gpu.Dim1(1), gpu.Dim1(1), func(ctx *gpu.ExecContext) {
			for i := 0; i < 16; i++ {
				ctx.StoreU32(buf+gpu.DevicePtr(i*4), 1)
			}
		})
		_ = dev.Free(buf)
		return p.Finish()
	}
	if rep := run([]string{"sparse"}); !rep.HasPattern(pattern.Overallocation) {
		t.Error("whitelisted kernel not analyzed")
	}
	if rep := run([]string{"otherkernel"}); rep.HasPattern(pattern.Overallocation) {
		t.Error("non-whitelisted kernel produced intra-object findings")
	}
}

func TestObjectLevelConfigSkipsIntraObject(t *testing.T) {
	dev := gpu.NewDevice(gpu.SpecTest())
	p := Attach(dev, DefaultConfig()) // object-level only
	buf, _ := dev.Malloc(4 << 10)
	_ = dev.LaunchFunc(nil, "sparse", gpu.Dim1(1), gpu.Dim1(1), func(ctx *gpu.ExecContext) {
		ctx.StoreU32(buf, 1)
	})
	_ = dev.Free(buf)
	rep := p.Finish()
	if rep.HasPattern(pattern.Overallocation) {
		t.Error("object-level profile produced intra-object findings")
	}
	if rep.Recorder != nil {
		t.Error("recorder active at object level")
	}
}

func TestHostTraceModeEquivalence(t *testing.T) {
	run := func(mode gpu.ObjectIDMode) *Report {
		dev := gpu.NewDevice(gpu.SpecTest())
		cfg := DefaultConfig()
		cfg.ObjectIDMode = mode
		p := Attach(dev, cfg)
		a, _ := dev.Malloc(256)
		b, _ := dev.Malloc(256) // unused
		_ = dev.LaunchFunc(nil, "k", gpu.Dim1(1), gpu.Dim1(1), func(ctx *gpu.ExecContext) {
			ctx.StoreU32(a, 1)
		})
		_ = dev.Free(a)
		_ = dev.Free(b)
		return p.Finish()
	}
	hit := run(gpu.ObjectIDHitFlags)
	host := run(gpu.ObjectIDHostTrace)
	hs, os := hit.PatternSet(), host.PatternSet()
	if len(hs) != len(os) {
		t.Fatalf("pattern sets differ across object-ID modes: %v vs %v", hs, os)
	}
	for i := range hs {
		if hs[i] != os[i] {
			t.Errorf("pattern sets differ: %v vs %v", hs, os)
		}
	}
}

func TestSnapshotIsOnlineAndNonDestructive(t *testing.T) {
	dev := gpu.NewDevice(gpu.SpecTest())
	p := Attach(dev, IntraObjectConfig())

	a, _ := dev.Malloc(1024)
	p.Annotate(a, "a", 4)
	_ = dev.Memset(a, 0, 1024, nil)

	// Mid-run snapshot: a is live, so it is a leak *so far*.
	snap := p.Snapshot()
	apisAtSnapshot := len(snap.Trace.APIs)
	if !snap.HasPattern(pattern.MemoryLeak) {
		t.Errorf("snapshot missed the still-live object: %v", snap.PatternSet())
	}
	if dev.PatchLevel() == gpu.PatchNone {
		t.Fatal("snapshot detached the profiler")
	}

	// Collection continues after the snapshot.
	_ = dev.LaunchFunc(nil, "k", gpu.Dim1(1), gpu.Dim1(1), func(ctx *gpu.ExecContext) {
		for i := 0; i < 256; i++ {
			ctx.StoreU32(a+gpu.DevicePtr(i*4), 1)
		}
	})
	_ = dev.Free(a)

	final := p.Finish()
	if final.HasPattern(pattern.MemoryLeak) {
		t.Errorf("final report still reports the freed object as leaked")
	}
	if len(final.Trace.APIs) <= apisAtSnapshot {
		t.Error("post-snapshot activity was not collected")
	}
	if final.HasPattern(pattern.Overallocation) {
		t.Error("kernel coverage after the snapshot was lost (recorder state damaged)")
	}
}

func TestBFCArenaIntegration(t *testing.T) {
	dev := gpu.NewDevice(gpu.SpecTest())
	p := Attach(dev, IntraObjectConfig())
	arena := pool.NewBFC(dev, 64<<10)
	p.AttachPool(arena)

	w, err := arena.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	p.Annotate(w, "tf_weights", 4)
	unused, err := arena.Alloc(2048)
	if err != nil {
		t.Fatal(err)
	}
	p.Annotate(unused, "tf_scratch", 4)

	_ = dev.LaunchFunc(nil, "matvec", gpu.Dim1(1), gpu.Dim1(1), func(ctx *gpu.ExecContext) {
		for i := 0; i < 64; i++ { // sparse touch: overallocation on the tensor
			ctx.StoreU32(w+gpu.DevicePtr(i*4), uint32(i))
		}
	})
	if err := arena.Free(w); err != nil {
		t.Fatal(err)
	}
	if err := arena.Free(unused); err != nil {
		t.Fatal(err)
	}
	if err := arena.Release(); err != nil {
		t.Fatal(err)
	}

	rep := p.Finish()
	// Tensor-level findings, not arena-level.
	if got := rep.PatternsForObject("tf_scratch"); len(got) == 0 {
		t.Errorf("BFC tensor invisible to the profiler: %v", rep.PatternSet())
	}
	found := false
	for _, f := range rep.FindingsForObject("tf_weights") {
		if f.Pattern == pattern.Overallocation {
			found = true
		}
	}
	if !found {
		t.Error("intra-object analysis did not reach the BFC tensor")
	}
	for _, o := range rep.Trace.Objects {
		if o.PoolSegment && len(o.Accesses) > 0 {
			t.Error("arena segment absorbed tensor accesses")
		}
	}
}

func TestRenderTimeline(t *testing.T) {
	dev := gpu.NewDevice(gpu.SpecTest())
	p := Attach(dev, DefaultConfig())
	a, _ := dev.Malloc(1024)
	p.Annotate(a, "alpha", 4)
	b, _ := dev.Malloc(1024)
	p.Annotate(b, "beta", 4)
	_ = dev.Memset(a, 0, 1024, nil)
	_ = dev.LaunchFunc(nil, "k", gpu.Dim1(1), gpu.Dim1(1), func(ctx *gpu.ExecContext) {
		ctx.StoreU32(b, 1)
	})
	_ = dev.Free(a)
	_ = dev.Free(b)
	rep := p.Finish()

	var sb strings.Builder
	rep.RenderTimeline(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 4 {
		t.Fatalf("timeline too short:\n%s", out)
	}
	// The API lane covers all six timestamps with kind initials.
	if !strings.Contains(lines[1], "AASKFF") {
		t.Errorf("API lane = %q, want AASKFF", lines[1])
	}
	// alpha: allocated at T0, memset at T2, freed at T4.
	var alphaRow, betaRow string
	for _, l := range lines {
		if strings.HasPrefix(l, "alpha") {
			alphaRow = l
		}
		if strings.HasPrefix(l, "beta") {
			betaRow = l
		}
	}
	if alphaRow == "" || betaRow == "" {
		t.Fatalf("object rows missing:\n%s", out)
	}
	// alpha: alloc T0, memset T2, free T4 -> "[-x-] "; beta: alloc T1,
	// kernel T3, free T5 -> " [-x-]".
	if !strings.Contains(alphaRow, "[-x-] ") {
		t.Errorf("alpha row = %q, want [-x-] at T0..T4", alphaRow)
	}
	if !strings.Contains(betaRow, " [-x-]") {
		t.Errorf("beta row = %q, want [-x-] at T1..T5", betaRow)
	}
	if !strings.Contains(out, "x access") {
		t.Error("legend missing")
	}
}

func TestCompare(t *testing.T) {
	record := func(withBug bool) *Report {
		dev := gpu.NewDevice(gpu.SpecTest())
		p := Attach(dev, DefaultConfig())
		a, _ := dev.Malloc(4096)
		p.Annotate(a, "a", 4)
		var waste gpu.DevicePtr
		if withBug {
			waste, _ = dev.Malloc(8192) // unused + leaked in the baseline
			p.Annotate(waste, "waste", 4)
		}
		_ = dev.Memset(a, 0, 4096, nil)
		_ = dev.Free(a)
		return p.Finish()
	}
	base := record(true)
	cand := record(false)

	c := Compare(base, cand)
	if c.BaselinePeak != 12288 || c.CandidatePeak != 4096 {
		t.Fatalf("peaks = %d -> %d", c.BaselinePeak, c.CandidatePeak)
	}
	if c.PeakReductionPct < 66 || c.PeakReductionPct > 67 {
		t.Errorf("reduction = %g", c.PeakReductionPct)
	}
	// waste's UA and ML disappear, and so does the EA on "a" that waste's
	// allocation had induced.
	if c.FixedCount != 3 || c.RemainingCount != 0 {
		t.Errorf("fixed/remaining = %d/%d (deltas %+v)", c.FixedCount, c.RemainingCount, c.Deltas)
	}
	if len(c.Introduced) != 0 {
		t.Errorf("introduced = %+v", c.Introduced)
	}
	var sb strings.Builder
	c.Render(&sb)
	if !strings.Contains(sb.String(), "3 finding(s) eliminated") {
		t.Errorf("render:\n%s", sb.String())
	}

	// Reversed comparison: the findings are introductions.
	rev := Compare(cand, base)
	if len(rev.Introduced) != 3 || rev.PeakReductionPct >= 0 {
		t.Errorf("reverse comparison = %+v", rev)
	}
}
