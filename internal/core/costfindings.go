package core

import (
	"sort"

	"drgpum/internal/costmodel"
	"drgpum/internal/pattern"
	"drgpum/internal/trace"
)

// detectUncoalesced scans the per-object cost aggregates for objects whose
// kernel traffic issues substantially more memory transactions than the
// coalesced ideal (DESIGN.md §4.10). The aggregates were accumulated at
// OnAPI arrival with commutative sums, so the scan sees identical values in
// every profiling mode, and objects are visited in ID order, so the finding
// list is deterministic.
func detectUncoalesced(t *trace.Trace, spec costmodel.Spec, cfg CostModelConfig) []pattern.Finding {
	minWarps := uint64(cfg.MinWarps)
	if cfg.MinWarps <= 0 {
		minWarps = DefaultUCMinWarps
	}
	ratio := cfg.ExcessRatio
	if ratio <= 0 {
		ratio = DefaultUCExcessRatio
	}
	var out []pattern.Finding
	for _, o := range t.Objects {
		if o.PoolSegment {
			continue
		}
		c := o.Cost
		if c.Warps < minWarps || c.IdealTransactions == 0 {
			continue
		}
		if float64(c.Transactions) < ratio*float64(c.IdealTransactions) {
			continue
		}
		excess := c.ExcessTransactions()
		if excess == 0 {
			continue
		}
		out = append(out, pattern.Finding{
			Pattern:  pattern.UncoalescedAccess,
			Object:   o.ID,
			AtKernel: dominantKernel(o.CostByKernel),
			// Each excess transaction moves one sector the coalesced
			// pattern would not have touched.
			WastedBytes:   excess * uint64(spec.SectorBytes),
			ModeledCycles: c.ModeledCycles,
			// A coalesced rewrite eliminates the excess transactions; the
			// worst case prices each at a DRAM round trip, but scale by the
			// observed hierarchy mix so cache-resident waste ranks lower.
			CyclesSaved: excess * avgTransactionCycles(c, spec),
		})
	}
	return out
}

// dominantKernel picks the kernel contributing the most excess transactions
// (ties broken by name order for determinism).
func dominantKernel(byKernel map[string]costmodel.ObjectCost) string {
	names := make([]string, 0, len(byKernel))
	for k := range byKernel {
		names = append(names, k)
	}
	sort.Strings(names)
	best, bestExcess := "", uint64(0)
	for _, k := range names {
		if e := byKernel[k].ExcessTransactions(); best == "" || e > bestExcess {
			best, bestExcess = k, e
		}
	}
	return best
}

// avgTransactionCycles is the observed mean latency of the object's memory
// transactions, clamped to at least the L1 hit cost.
func avgTransactionCycles(c costmodel.ObjectCost, spec costmodel.Spec) uint64 {
	if c.Transactions == 0 {
		return spec.DRAMCycles
	}
	avg := c.ModeledCycles / c.Transactions
	if avg < spec.L1HitCycles {
		avg = spec.L1HitCycles
	}
	return avg
}

// attachCycles decorates a finding with the cost model's cycle estimates
// (DESIGN.md §4.10). ModeledCycles is what the object's kernel traffic
// costs today; CyclesSaved is the closed-form estimate of the benefit of
// applying the finding's suggestion:
//
//   - byte-movement patterns (dead write, early allocation, late
//     deallocation, temporary idleness, memory leak) save the DMA cycles of
//     not staging/holding the wasted bytes, priced at the copy engine's
//     bytes-per-cycle rate;
//   - allocation-call patterns (redundant and unused allocation) save a
//     device allocation and deallocation call;
//   - footprint patterns (overallocation, structured access) additionally
//     recover TLB reach: when the object exceeds it, each dropped page
//     saves a TLB miss walk;
//   - non-uniform access frequency scales the object's modeled traffic
//     cost by the variation coefficient (hot slices pinned in faster
//     memory);
//   - uncoalesced access was priced by its detector and is left as is.
//
// Every estimate is clamped to at least one cycle so ranked advice never
// shows a detected inefficiency as free (the Table 1 acceptance checks
// rely on this).
func attachCycles(t *trace.Trace, spec costmodel.Spec, f *pattern.Finding) {
	o := t.Object(f.Object)
	if f.Pattern != pattern.UncoalescedAccess {
		f.ModeledCycles = o.Cost.ModeledCycles
	}
	bw := spec.CopyBytesPerCycle
	if bw == 0 {
		bw = 1
	}
	var saved uint64
	switch f.Pattern {
	case pattern.DeadWrite, pattern.EarlyAllocation, pattern.LateDeallocation,
		pattern.TemporaryIdleness, pattern.MemoryLeak:
		saved = f.WastedBytes / bw
	case pattern.RedundantAllocation, pattern.UnusedAllocation:
		saved = spec.MallocCycles + spec.FreeCycles
	case pattern.Overallocation, pattern.StructuredAccess:
		saved = f.WastedBytes / bw
		if o.Size > spec.TLBReach() {
			droppedPages := spec.Pages(f.WastedBytes)
			saved += droppedPages * spec.TLBMissCycles
		}
	case pattern.NonUniformAccessFrequency:
		pct := f.VariationPct
		if pct > 100 {
			pct = 100
		}
		// At most a quarter of the traffic cost: pinning hot slices
		// accelerates them, it does not eliminate the accesses.
		saved = o.Cost.ModeledCycles * uint64(pct) / 400
	case pattern.UncoalescedAccess:
		return // priced at detection
	}
	if saved == 0 {
		saved = 1
	}
	f.CyclesSaved = saved
}

// severityCycles ranks findings when the cost model is enabled: primarily
// by the modeled cycles a fix recovers, doubled for objects on a reported
// memory peak, and boosted by the advisor's marginal peak savings so
// footprint fixes that actually move the peak still outrank minor traffic
// trims (bytes are scaled into cycle units via a nominal copy rate).
func severityCycles(f *pattern.Finding) float64 {
	s := float64(f.CyclesSaved)
	if f.OnPeak {
		s *= 2
	}
	s += float64(f.PeakSavingsBytes) / 8
	return s
}

// classify buckets a finding into the three-level severity scale every
// tool's JSON schema shares. Leaks are defects; findings with substantial
// modeled savings or peak involvement are warnings; the rest is advisory.
func classify(f *pattern.Finding) pattern.SeverityClass {
	switch {
	case f.Pattern == pattern.MemoryLeak:
		return pattern.SeverityError
	case f.OnPeak || f.PeakSavingsBytes > 0:
		return pattern.SeverityWarning
	case f.CyclesSaved >= 10_000 || f.WastedBytes >= 64<<10:
		return pattern.SeverityWarning
	default:
		return pattern.SeverityInfo
	}
}

// confidence estimates how certain the profiler is that acting on the
// finding helps, per pattern class: lifetime patterns are read directly
// off the trace (certain), intra-object patterns may be sampled, and
// cost-model patterns rest on modeled rather than measured latencies.
func confidence(p pattern.Pattern) float64 {
	switch p {
	case pattern.UnusedAllocation, pattern.MemoryLeak, pattern.DeadWrite:
		return 1.0
	case pattern.EarlyAllocation, pattern.LateDeallocation,
		pattern.RedundantAllocation, pattern.TemporaryIdleness:
		return 0.9
	case pattern.Overallocation, pattern.StructuredAccess,
		pattern.NonUniformAccessFrequency:
		return 0.8
	case pattern.UncoalescedAccess:
		return 0.7
	default:
		return 0.5
	}
}
