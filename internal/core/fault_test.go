package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"drgpum/internal/gpu"
	"drgpum/internal/trace"
)

// TestProfilerSurvivesInjectedOOM runs a program under the profiler with a
// scheduled allocator failure, mirroring how an application would hit
// cudaErrorMemoryAllocation mid-run: the error reaches the caller exactly
// once, nothing panics, and Finish still produces a well-formed report
// covering the APIs that did execute.
func TestProfilerSurvivesInjectedOOM(t *testing.T) {
	dev := gpu.NewDevice(gpu.SpecTest())
	dev.InjectFaults(gpu.FaultPlan{FailAllocs: []uint64{2}})
	p := Attach(dev, IntraObjectConfig())

	a, err := dev.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	p.Annotate(a, "a", 4)
	b, err := dev.Malloc(2048)
	if err != nil {
		t.Fatal(err)
	}
	p.Annotate(b, "b", 4)

	// The scheduled failure: surfaced to the caller, exactly once, as an
	// out-of-memory error that names the injection.
	_, err = dev.Malloc(8192)
	if !errors.Is(err, gpu.ErrOutOfMemory) {
		t.Fatalf("injected alloc error = %v, want ErrOutOfMemory", err)
	}
	if !strings.Contains(err.Error(), "injected fault at alloc #2") {
		t.Errorf("error does not name the injection: %v", err)
	}

	// A retry succeeds (the schedule is per allocation index, not sticky),
	// so a program with its own OOM recovery keeps running.
	c, err := dev.Malloc(8192)
	if err != nil {
		t.Fatalf("retry after injected fault: %v", err)
	}
	p.Annotate(c, "c", 4)

	if err := dev.Memset(a, 0, 4096, nil); err != nil {
		t.Fatal(err)
	}
	if err := dev.LaunchFunc(nil, "touch", gpu.Dim1(1), gpu.Dim1(32), func(ctx *gpu.ExecContext) {
		for i := 0; i < 1024; i++ {
			ctx.StoreU32(c+gpu.DevicePtr(i*4), ctx.LoadU32(a+gpu.DevicePtr(i*4)))
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := dev.Free(a); err != nil {
		t.Fatal(err)
	}

	rep := p.Finish()
	if rep == nil {
		t.Fatal("Finish returned nil after an injected fault")
	}
	if got := len(rep.Trace.Objects); got != 3 {
		t.Errorf("report covers %d objects, want 3 (the successful allocations)", got)
	}
	stats := trace.ComputeStats(rep.Trace)
	if stats.ByKind[gpu.APIMalloc] != 3 {
		t.Errorf("malloc count = %d, want 3", stats.ByKind[gpu.APIMalloc])
	}

	var buf bytes.Buffer
	rep.Render(&buf, true)
	if !strings.Contains(buf.String(), "DrGPUM report") {
		t.Errorf("partial report did not render:\n%s", buf.String())
	}
	data, err := rep.MarshalJSON()
	if err != nil {
		t.Fatalf("partial report JSON: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("partial report JSON malformed: %v", err)
	}
}

// TestProfilerMemcheckUnderInjectedOOM combines fault injection with the
// memory-safety checker: an injected failure must not desynchronize the
// checker's allocation bookkeeping or invent issues for the program's
// surviving objects.
func TestProfilerMemcheckUnderInjectedOOM(t *testing.T) {
	dev := gpu.NewDevice(gpu.SpecTest())
	dev.InjectFaults(gpu.FaultPlan{FailAllocs: []uint64{1}})
	cfg := IntraObjectConfig()
	cfg.Memcheck = true
	p := Attach(dev, cfg)

	a, err := dev.Malloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	p.Annotate(a, "a", 4)
	if _, err := dev.Malloc(512); !errors.Is(err, gpu.ErrOutOfMemory) {
		t.Fatalf("expected injected OOM, got %v", err)
	}

	if err := dev.Memset(a, 7, 1024, nil); err != nil {
		t.Fatal(err)
	}
	if err := dev.Free(a); err != nil {
		t.Fatal(err)
	}

	rep := p.Finish()
	if rep.Memcheck == nil {
		t.Fatal("no memcheck section")
	}
	if !rep.Memcheck.Clean() {
		t.Errorf("memcheck invented issues after an injected fault: %+v", rep.Memcheck.Issues)
	}
	if rep.Memcheck.Allocs != 1 || rep.Memcheck.Frees != 1 {
		t.Errorf("memcheck saw %d allocs / %d frees, want 1/1",
			rep.Memcheck.Allocs, rep.Memcheck.Frees)
	}
}
