package core

import (
	"fmt"
	"io"
	"sort"

	"drgpum/internal/trace"
)

// heatMaxRows and heatMaxCols bound the text heat-map render the same way
// timelineMaxColumns bounds the timeline: long runs clip with a note.
const (
	heatMaxRows = 24
	heatMaxCols = 64
)

// heatRamp maps relative access intensity to a glyph, blank for untouched.
const heatRamp = " .:-=+*#%@"

// RenderHeatMap draws the temporal heat map of a streaming run as text: one
// row per object (hottest first), one column per kernel-epoch window, each
// cell's glyph scaled by how many GPU APIs of that epoch touched the object.
// It is the CUTHERMO-style object×time view of where access activity
// concentrates; RenderTimeline shows lifetimes per timestamp, this shows
// intensity per epoch. Offline reports have no heat map (nil Report.Heat).
func (r *Report) RenderHeatMap(w io.Writer) {
	if r.Heat == nil {
		fmt.Fprintln(w, "(no heat map — profile with streaming enabled)")
		return
	}
	h := r.Heat
	if len(h.Epochs) == 0 {
		fmt.Fprintln(w, "(no closed epochs)")
		return
	}

	cols := len(h.Epochs)
	colsClipped := cols > heatMaxCols
	if colsClipped {
		cols = heatMaxCols
	}

	// Rank objects by total touches across the rendered epochs (desc, then
	// ID asc) and find the scaling maximum.
	totals := make(map[trace.ObjectID]uint64)
	excess := make(map[trace.ObjectID]uint64)
	var maxCell uint64
	for e := 0; e < cols; e++ {
		for _, c := range h.Epochs[e].Cells {
			totals[c.Object] += c.Touches
			excess[c.Object] += c.ExcessTransactions
			if c.Touches > maxCell {
				maxCell = c.Touches
			}
		}
	}
	ids := make([]trace.ObjectID, 0, len(totals))
	for id := range totals {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if totals[ids[i]] != totals[ids[j]] {
			return totals[ids[i]] > totals[ids[j]]
		}
		return ids[i] < ids[j]
	})
	rowsClipped := len(ids) > heatMaxRows
	if rowsClipped {
		ids = ids[:heatMaxRows]
	}

	nameWidth := 12
	for _, id := range ids {
		if n := len(r.Trace.Object(id).DisplayName()); n > nameWidth {
			nameWidth = n
		}
	}

	fmt.Fprintf(w, "temporal heat map — %d epoch(s) of %d kernel(s) each\n",
		len(h.Epochs), h.WindowKernels)
	fmt.Fprintf(w, "%-*s  epoch 0..%d\n", nameWidth, "", cols-1)
	for _, id := range ids {
		row := make([]byte, cols)
		for e := 0; e < cols; e++ {
			row[e] = heatRamp[0]
			for _, c := range h.Epochs[e].Cells {
				if c.Object == id {
					row[e] = heatGlyph(c.Touches, maxCell)
					break
				}
				if c.Object > id {
					break // cells are sorted by object
				}
			}
		}
		if ex := excess[id]; ex > 0 {
			fmt.Fprintf(w, "%-*s  %s  (%d touches, %d excess txn)\n",
				nameWidth, r.Trace.Object(id).DisplayName(), string(row), totals[id], ex)
		} else {
			fmt.Fprintf(w, "%-*s  %s  (%d touches)\n",
				nameWidth, r.Trace.Object(id).DisplayName(), string(row), totals[id])
		}
	}
	fmt.Fprintf(w, "%-*s  intensity: '%s' (low..high)\n", nameWidth, "", heatRamp[1:])
	if colsClipped {
		fmt.Fprintf(w, "%-*s  (clipped: showing %d of %d epochs)\n",
			nameWidth, "", cols, len(h.Epochs))
	}
	if rowsClipped {
		fmt.Fprintf(w, "%-*s  (clipped: showing the %d hottest of %d objects)\n",
			nameWidth, "", heatMaxRows, len(totals))
	}
}

// heatGlyph scales a cell's touch count against the map maximum.
func heatGlyph(touches, maxCell uint64) byte {
	if touches == 0 || maxCell == 0 {
		return heatRamp[0]
	}
	idx := 1 + int(touches*uint64(len(heatRamp)-2)/maxCell)
	if idx >= len(heatRamp) {
		idx = len(heatRamp) - 1
	}
	return heatRamp[idx]
}
