package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"drgpum/internal/advisor"
	"drgpum/internal/depgraph"
	"drgpum/internal/gpu"
	"drgpum/internal/intraobj"
	"drgpum/internal/memcheck"
	"drgpum/internal/obs"
	"drgpum/internal/pattern"
	"drgpum/internal/peak"
	"drgpum/internal/trace"
)

// Report is the profiler's final output: the annotated trace, the
// dependency graph, the memory-peak analysis, and the ranked findings.
type Report struct {
	// Device is the profiled device name.
	Device string
	// Trace is the object-level memory access trace with topological
	// timestamps assigned.
	Trace *trace.Trace
	// Graph is the GPU API dependency graph.
	Graph *depgraph.Graph
	// Peaks is the memory-peak analysis.
	Peaks *peak.Analysis
	// Findings are the detected inefficiencies, most severe first.
	Findings []pattern.Finding
	// MemStats is the device allocator snapshot at Finish time.
	MemStats gpu.AllocStats
	// Elapsed is the simulated execution time in cycles.
	Elapsed uint64
	// ModeStats reports the adaptive intra-object map-mode decisions.
	ModeStats intraobj.ModeStats
	// Recorder gives access to intra-object histograms (nil at PatchAPI).
	Recorder *intraobj.Recorder
	// Advice is the what-if estimate: the data-object peak the program
	// would have if every suggestion in Findings were applied.
	Advice advisor.Estimate
	// Memcheck is the memory-safety report (nil unless Config.Memcheck).
	Memcheck *memcheck.Report
	// Obs is the self-observability snapshot taken when the report was
	// assembled (nil unless Config.Obs). Render with Stats or Export
	// (FormatStats); wall-clock totals live only here, never in the
	// byte-identity report text.
	Obs *obs.Snapshot
	// Heat is the temporal object×epoch heat map a streaming run
	// accumulated (nil unless Config.Streaming.Enabled). Render with
	// RenderHeatMap or view the GUI export's heat track. Deliberately
	// outside Render and MarshalJSON, which stay byte-identical between
	// streaming and offline runs.
	Heat *HeatMap
}

// HasPattern reports whether any finding matches the pattern.
func (r *Report) HasPattern(p pattern.Pattern) bool {
	for i := range r.Findings {
		if r.Findings[i].Pattern == p {
			return true
		}
	}
	return false
}

// PatternSet returns the distinct detected patterns in table order — one
// row of the paper's Table 1.
func (r *Report) PatternSet() []pattern.Pattern {
	seen := make(map[pattern.Pattern]bool)
	for i := range r.Findings {
		seen[r.Findings[i].Pattern] = true
	}
	var out []pattern.Pattern
	for _, p := range pattern.All() {
		if seen[p] {
			out = append(out, p)
		}
	}
	return out
}

// FindingsForObject returns the findings whose object carries the given
// label, in severity order.
func (r *Report) FindingsForObject(label string) []pattern.Finding {
	var out []pattern.Finding
	for i := range r.Findings {
		if r.Trace.Object(r.Findings[i].Object).Label == label {
			out = append(out, r.Findings[i])
		}
	}
	return out
}

// PatternsForObject returns the distinct patterns detected on the labelled
// object — one cell group of the paper's Table 4.
func (r *Report) PatternsForObject(label string) []pattern.Pattern {
	seen := make(map[pattern.Pattern]bool)
	for _, f := range r.FindingsForObject(label) {
		seen[f.Pattern] = true
	}
	var out []pattern.Pattern
	for _, p := range pattern.All() {
		if seen[p] {
			out = append(out, p)
		}
	}
	return out
}

// Render writes a human-readable report. With verbose set, call paths and
// per-finding suggestions are included (the GUI detail-pane content).
func (r *Report) Render(w io.Writer, verbose bool) {
	fmt.Fprintf(w, "DrGPUM report — device %s\n", r.Device)
	fmt.Fprintf(w, "  GPU APIs: %d   data objects: %d   simulated cycles: %d\n",
		len(r.Trace.APIs), len(r.Trace.Objects), r.Elapsed)
	fmt.Fprintf(w, "  peak device memory: %d bytes (capacity %d)\n",
		r.MemStats.Peak, r.MemStats.Capacity)
	st := trace.ComputeStats(r.Trace)
	fmt.Fprintf(w, "  API mix: %d alloc / %d free / %d copy (%d B) / %d set (%d B) / %d kernel",
		st.ByKind[gpu.APIMalloc], st.ByKind[gpu.APIFree],
		st.ByKind[gpu.APIMemcpy], st.CopyBytes,
		st.ByKind[gpu.APIMemset], st.SetBytes,
		st.ByKind[gpu.APIKernel])
	if st.PoolOps > 0 {
		fmt.Fprintf(w, " (%d pool ops)", st.PoolOps)
	}
	fmt.Fprintf(w, "; %d stream(s)\n", st.Streams)
	if st.LeakedObjects > 0 {
		fmt.Fprintf(w, "  unfreed at exit: %d object(s), %d bytes\n", st.LeakedObjects, st.LeakedBytes)
	}
	fmt.Fprintf(w, "  %s\n", r.Graph)

	for i, p := range r.Peaks.Peaks {
		fmt.Fprintf(w, "  memory peak #%d: %d bytes at T=%d, %d object(s) live\n",
			i+1, p.Bytes, p.Topo, len(p.Live))
		if verbose {
			for _, id := range p.Live {
				o := r.Trace.Object(id)
				fmt.Fprintf(w, "      %-24s %10d bytes  %v\n", o.DisplayName(), o.Size, o.Range())
			}
		}
	}

	if r.Advice.EstimatedPeak < r.Advice.OriginalPeak {
		fmt.Fprintf(w, "  applying all suggestions would cut the data-object peak from %d to %d bytes (-%.0f%%)\n",
			r.Advice.OriginalPeak, r.Advice.EstimatedPeak, r.Advice.ReductionPct)
	}
	fmt.Fprintf(w, "  findings: %d\n", len(r.Findings))
	for i := range r.Findings {
		f := &r.Findings[i]
		o := r.Trace.Object(f.Object)
		peakMark := ""
		if f.OnPeak {
			peakMark = "  [on peak]"
		}
		fmt.Fprintf(w, "\n  [%d] %s — %s (%d bytes)%s\n", i+1, f.Pattern, o.DisplayName(), o.Size, peakMark)
		if f.Distance > 0 {
			fmt.Fprintf(w, "      inefficiency distance: %d\n", f.Distance)
		}
		if f.PeakSavingsBytes > 0 {
			fmt.Fprintf(w, "      fixing this alone saves an estimated %d bytes of peak\n", f.PeakSavingsBytes)
		}
		if f.Pattern == pattern.Overallocation {
			fmt.Fprintf(w, "      accessed elements: %.3g%%   fragmentation: %.3g%%\n",
				f.AccessedPct, f.FragmentationPct)
		}
		if f.Pattern == pattern.NonUniformAccessFrequency {
			fmt.Fprintf(w, "      access-frequency variation: %.3g%% at kernel %s\n",
				f.VariationPct, f.AtKernel)
		}
		fmt.Fprintf(w, "      suggestion: %s\n", wrap(f.Suggestion, 72, "                  "))
		if verbose {
			fmt.Fprintf(w, "      allocated at:\n%s\n",
				indent(r.Trace.Unwinder.FormatTrimmed(o.AllocPath, "drgpum/internal/gpu.", "drgpum/internal/trace.", "drgpum/internal/core."), "        "))
		}
	}

	if r.Memcheck != nil {
		fmt.Fprintf(w, "\n")
		// Render only fails when the writer fails, in which case every
		// Fprintf above already swallowed the same failure.
		_ = r.Memcheck.Render(w)
	}
}

// String renders the non-verbose report.
func (r *Report) String() string {
	var b strings.Builder
	r.Render(&b, false)
	return b.String()
}

// wrap soft-wraps s at the given width, prefixing continuation lines.
func wrap(s string, width int, contPrefix string) string {
	words := strings.Fields(s)
	if len(words) == 0 {
		return s
	}
	var b strings.Builder
	line := 0
	for i, wd := range words {
		if i > 0 {
			if line+1+len(wd) > width {
				b.WriteString("\n")
				b.WriteString(contPrefix)
				line = 0
			} else {
				b.WriteByte(' ')
				line++
			}
		}
		b.WriteString(wd)
		line += len(wd)
	}
	return b.String()
}

// indent prefixes every line of s.
func indent(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}

// jsonFinding is the serialized form of a finding.
type jsonFinding struct {
	Pattern          string   `json:"pattern"`
	Abbrev           string   `json:"abbrev"`
	Object           string   `json:"object"`
	ObjectBytes      uint64   `json:"object_bytes"`
	Partner          string   `json:"partner,omitempty"`
	APIs             []string `json:"apis,omitempty"`
	Distance         uint64   `json:"distance,omitempty"`
	WastedBytes      uint64   `json:"wasted_bytes,omitempty"`
	AccessedPct      float64  `json:"accessed_pct,omitempty"`
	FragmentationPct float64  `json:"fragmentation_pct,omitempty"`
	VariationPct     float64  `json:"variation_pct,omitempty"`
	Kernel           string   `json:"kernel,omitempty"`
	PeakSavings      uint64   `json:"peak_savings_bytes,omitempty"`
	OnPeak           bool     `json:"on_peak"`
	Suggestion       string   `json:"suggestion"`
	AllocSite        string   `json:"alloc_site,omitempty"`
}

// jsonReport is the serialized report envelope.
type jsonReport struct {
	Device      string        `json:"device"`
	APIs        int           `json:"gpu_apis"`
	Objects     int           `json:"data_objects"`
	PeakBytes   uint64        `json:"peak_bytes"`
	Cycles      uint64        `json:"simulated_cycles"`
	PeakTops    []uint64      `json:"top_peak_bytes"`
	Findings    []jsonFinding `json:"findings"`
	DeviceMaps  int           `json:"device_map_kernels,omitempty"`
	HostMaps    int           `json:"host_map_kernels,omitempty"`
	GraphString string        `json:"dependency_graph"`
	// Advice is the what-if estimate of applying every suggestion.
	AdvicePeak         uint64  `json:"advised_peak_bytes"`
	AdviceReductionPct float64 `json:"advised_reduction_pct"`
	// Memcheck summarizes the memory-safety report when one was taken.
	Memcheck *jsonMemcheck `json:"memcheck,omitempty"`
	// Obs is the self-observability snapshot with wall-clock fields
	// zeroed, so report JSON stays byte-identical across runs.
	Obs *obs.Snapshot `json:"obs,omitempty"`
}

// jsonMemcheck is the serialized memory-safety summary.
type jsonMemcheck struct {
	Issues       int    `json:"issues"`
	LeakBytes    uint64 `json:"leak_bytes"`
	ReadsChecked uint64 `json:"reads_checked"`
}

// MarshalJSON serializes the report for machine consumption.
func (r *Report) MarshalJSON() ([]byte, error) {
	jr := jsonReport{
		Device:             r.Device,
		APIs:               len(r.Trace.APIs),
		Objects:            len(r.Trace.Objects),
		PeakBytes:          r.MemStats.Peak,
		Cycles:             r.Elapsed,
		DeviceMaps:         r.ModeStats.DeviceKernels,
		HostMaps:           r.ModeStats.HostKernels,
		GraphString:        r.Graph.String(),
		AdvicePeak:         r.Advice.EstimatedPeak,
		AdviceReductionPct: r.Advice.ReductionPct,
	}
	if r.Memcheck != nil {
		jr.Memcheck = &jsonMemcheck{
			Issues:       len(r.Memcheck.Issues),
			LeakBytes:    r.Memcheck.LeakBytes,
			ReadsChecked: r.Memcheck.AccessesChecked,
		}
	}
	if r.Obs != nil {
		zw := r.Obs.ZeroWall()
		jr.Obs = &zw
	}
	for _, p := range r.Peaks.Peaks {
		jr.PeakTops = append(jr.PeakTops, p.Bytes)
	}
	for i := range r.Findings {
		f := &r.Findings[i]
		o := r.Trace.Object(f.Object)
		jf := jsonFinding{
			Pattern:          f.Pattern.String(),
			Abbrev:           f.Pattern.Abbrev(),
			Object:           o.DisplayName(),
			ObjectBytes:      o.Size,
			Distance:         f.Distance,
			WastedBytes:      f.WastedBytes,
			AccessedPct:      f.AccessedPct,
			FragmentationPct: f.FragmentationPct,
			VariationPct:     f.VariationPct,
			Kernel:           f.AtKernel,
			PeakSavings:      f.PeakSavingsBytes,
			OnPeak:           f.OnPeak,
			Suggestion:       f.Suggestion,
		}
		if f.HasPartner {
			jf.Partner = r.Trace.Object(f.Partner).DisplayName()
		}
		for _, api := range f.APIs {
			jf.APIs = append(jf.APIs, r.Trace.API(api).Label())
		}
		if leaf, ok := r.Trace.Unwinder.Leaf(o.AllocPath); ok {
			jf.AllocSite = leaf.String()
		}
		jr.Findings = append(jr.Findings, jf)
	}
	return json.MarshalIndent(jr, "", "  ")
}

// SortFindingsByObject reorders findings by (object, pattern) — the layout
// used by table generators. It returns the report for chaining.
func (r *Report) SortFindingsByObject() *Report {
	sort.SliceStable(r.Findings, func(i, j int) bool {
		if r.Findings[i].Object != r.Findings[j].Object {
			return r.Findings[i].Object < r.Findings[j].Object
		}
		return r.Findings[i].Pattern < r.Findings[j].Pattern
	})
	return r
}
