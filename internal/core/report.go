package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"drgpum/internal/advisor"
	"drgpum/internal/costmodel"
	"drgpum/internal/depgraph"
	"drgpum/internal/gpu"
	"drgpum/internal/intraobj"
	"drgpum/internal/memcheck"
	"drgpum/internal/obs"
	"drgpum/internal/pattern"
	"drgpum/internal/peak"
	"drgpum/internal/trace"
)

// Report is the profiler's final output: the annotated trace, the
// dependency graph, the memory-peak analysis, and the ranked findings.
type Report struct {
	// Device is the profiled device name.
	Device string
	// Trace is the object-level memory access trace with topological
	// timestamps assigned.
	Trace *trace.Trace
	// Graph is the GPU API dependency graph.
	Graph *depgraph.Graph
	// Peaks is the memory-peak analysis.
	Peaks *peak.Analysis
	// Findings are the detected inefficiencies, most severe first.
	Findings []pattern.Finding
	// MemStats is the device allocator snapshot at Finish time.
	MemStats gpu.AllocStats
	// Elapsed is the simulated execution time in cycles.
	Elapsed uint64
	// ModeStats reports the adaptive intra-object map-mode decisions.
	ModeStats intraobj.ModeStats
	// Recorder gives access to intra-object histograms (nil at PatchAPI).
	Recorder *intraobj.Recorder
	// WhatIf is the aggregate what-if estimate: the data-object peak the
	// program would have if every suggestion in Findings were applied.
	// (Per-finding ranked advice lives behind the Advice method.)
	WhatIf advisor.Estimate
	// CostModel is the memory-hierarchy cost model spec the run used, or
	// nil when the model was disabled (Config.CostModel.Disabled). When
	// set, findings carry ModeledCycles/CyclesSaved and severity ranks by
	// cycles saved.
	CostModel *costmodel.Spec
	// Memcheck is the memory-safety report (nil unless Config.Memcheck).
	Memcheck *memcheck.Report
	// Obs is the self-observability snapshot taken when the report was
	// assembled (nil unless Config.Obs). Render with Stats or Export
	// (FormatStats); wall-clock totals live only here, never in the
	// byte-identity report text.
	Obs *obs.Snapshot
	// Heat is the temporal object×epoch heat map a streaming run
	// accumulated (nil unless Config.Streaming.Enabled). Render with
	// RenderHeatMap or view the GUI export's heat track. Deliberately
	// outside Render and MarshalJSON, which stay byte-identical between
	// streaming and offline runs.
	Heat *HeatMap
}

// HasPattern reports whether any finding matches the pattern.
func (r *Report) HasPattern(p pattern.Pattern) bool {
	for i := range r.Findings {
		if r.Findings[i].Pattern == p {
			return true
		}
	}
	return false
}

// PatternSet returns the distinct detected patterns in table order — one
// row of the paper's Table 1.
func (r *Report) PatternSet() []pattern.Pattern {
	seen := make(map[pattern.Pattern]bool)
	for i := range r.Findings {
		seen[r.Findings[i].Pattern] = true
	}
	var out []pattern.Pattern
	for _, p := range pattern.All() {
		if seen[p] {
			out = append(out, p)
		}
	}
	return out
}

// FindingsForObject returns the findings whose object carries the given
// label, in severity order.
func (r *Report) FindingsForObject(label string) []pattern.Finding {
	var out []pattern.Finding
	for i := range r.Findings {
		if r.Trace.Object(r.Findings[i].Object).Label == label {
			out = append(out, r.Findings[i])
		}
	}
	return out
}

// PatternsForObject returns the distinct patterns detected on the labelled
// object — one cell group of the paper's Table 4.
func (r *Report) PatternsForObject(label string) []pattern.Pattern {
	seen := make(map[pattern.Pattern]bool)
	for _, f := range r.FindingsForObject(label) {
		seen[f.Pattern] = true
	}
	var out []pattern.Pattern
	for _, p := range pattern.All() {
		if seen[p] {
			out = append(out, p)
		}
	}
	return out
}

// Advice is one ranked, self-contained optimization recommendation — the
// unified shape every finding vocabulary (profiler findings, static-advisor
// findings, memcheck issues) maps into for machine consumption. Pattern IDs
// and severity strings are shared across the whole toolchain (drgpum -json,
// drgpum-staticadv -json, drgpum-lint).
type Advice struct {
	// PatternID is the stable kebab-case pattern identifier
	// (pattern.Pattern.ID, e.g. "uncoalesced-access").
	PatternID string
	// Pattern is the human-readable pattern name.
	Pattern string
	// Object is the affected data object's display name.
	Object string
	// AllocSite is the leaf frame of the object's allocation call path
	// (empty when unresolvable).
	AllocSite string
	// Kernel names the kernel evidencing an intra-object or cost-model
	// pattern (empty for lifetime patterns).
	Kernel string
	// BytesSaved is the byte benefit of acting on the advice: the marginal
	// peak reduction when the object shapes a peak, else the wasted bytes.
	BytesSaved uint64
	// ModeledCycles is the cost model's estimate of what the object's
	// kernel traffic costs today (0 when the model is disabled).
	ModeledCycles uint64
	// CyclesSaved is the cost model's estimate of cycles recovered by the
	// fix (0 when the model is disabled); advice is ranked by it.
	CyclesSaved uint64
	// Severity buckets the advice into the shared info/warning/error scale.
	Severity pattern.SeverityClass
	// Confidence in (0, 1]: how certain the profiler is that the fix
	// helps, by pattern class (trace-exact lifetime facts rank above
	// sampled intra-object and modeled cost estimates).
	Confidence float64
	// Suggestion is the human-facing guidance text.
	Suggestion string
}

// Advice returns every finding as a ranked recommendation, most valuable
// first (the findings' severity order). This is the first-class advice
// surface; the rendered report and the JSON export are views over the same
// data.
func (r *Report) Advice() []Advice {
	out := make([]Advice, 0, len(r.Findings))
	for i := range r.Findings {
		f := &r.Findings[i]
		o := r.Trace.Object(f.Object)
		a := Advice{
			PatternID:     f.Pattern.ID(),
			Pattern:       f.Pattern.String(),
			Object:        o.DisplayName(),
			Kernel:        f.AtKernel,
			BytesSaved:    f.WastedBytes,
			ModeledCycles: f.ModeledCycles,
			CyclesSaved:   f.CyclesSaved,
			Severity:      classify(f),
			Confidence:    confidence(f.Pattern),
			Suggestion:    f.Suggestion,
		}
		if f.PeakSavingsBytes > 0 {
			a.BytesSaved = f.PeakSavingsBytes
		}
		if leaf, ok := r.Trace.Unwinder.Leaf(o.AllocPath); ok {
			a.AllocSite = leaf.String()
		}
		out = append(out, a)
	}
	return out
}

// Render writes a human-readable report. With verbose set, call paths and
// per-finding suggestions are included (the GUI detail-pane content).
func (r *Report) Render(w io.Writer, verbose bool) {
	fmt.Fprintf(w, "DrGPUM report — device %s\n", r.Device)
	fmt.Fprintf(w, "  GPU APIs: %d   data objects: %d   simulated cycles: %d\n",
		len(r.Trace.APIs), len(r.Trace.Objects), r.Elapsed)
	fmt.Fprintf(w, "  peak device memory: %d bytes (capacity %d)\n",
		r.MemStats.Peak, r.MemStats.Capacity)
	st := trace.ComputeStats(r.Trace)
	fmt.Fprintf(w, "  API mix: %d alloc / %d free / %d copy (%d B) / %d set (%d B) / %d kernel",
		st.ByKind[gpu.APIMalloc], st.ByKind[gpu.APIFree],
		st.ByKind[gpu.APIMemcpy], st.CopyBytes,
		st.ByKind[gpu.APIMemset], st.SetBytes,
		st.ByKind[gpu.APIKernel])
	if st.PoolOps > 0 {
		fmt.Fprintf(w, " (%d pool ops)", st.PoolOps)
	}
	fmt.Fprintf(w, "; %d stream(s)\n", st.Streams)
	if st.LeakedObjects > 0 {
		fmt.Fprintf(w, "  unfreed at exit: %d object(s), %d bytes\n", st.LeakedObjects, st.LeakedBytes)
	}
	fmt.Fprintf(w, "  %s\n", r.Graph)

	for i, p := range r.Peaks.Peaks {
		fmt.Fprintf(w, "  memory peak #%d: %d bytes at T=%d, %d object(s) live\n",
			i+1, p.Bytes, p.Topo, len(p.Live))
		if verbose {
			for _, id := range p.Live {
				o := r.Trace.Object(id)
				fmt.Fprintf(w, "      %-24s %10d bytes  %v\n", o.DisplayName(), o.Size, o.Range())
			}
		}
	}

	if r.WhatIf.EstimatedPeak < r.WhatIf.OriginalPeak {
		fmt.Fprintf(w, "  applying all suggestions would cut the data-object peak from %d to %d bytes (-%.0f%%)\n",
			r.WhatIf.OriginalPeak, r.WhatIf.EstimatedPeak, r.WhatIf.ReductionPct)
	}
	if r.CostModel != nil {
		var saved uint64
		for i := range r.Findings {
			saved += r.Findings[i].CyclesSaved
		}
		fmt.Fprintf(w, "  cost model: advice ranked by modeled cycles; fixes recover an estimated %d cycle(s)\n", saved)
	}
	fmt.Fprintf(w, "  findings: %d\n", len(r.Findings))
	for i := range r.Findings {
		f := &r.Findings[i]
		o := r.Trace.Object(f.Object)
		peakMark := ""
		if f.OnPeak {
			peakMark = "  [on peak]"
		}
		fmt.Fprintf(w, "\n  [%d] %s — %s (%d bytes)%s\n", i+1, f.Pattern, o.DisplayName(), o.Size, peakMark)
		if f.Distance > 0 {
			fmt.Fprintf(w, "      inefficiency distance: %d\n", f.Distance)
		}
		if f.PeakSavingsBytes > 0 {
			fmt.Fprintf(w, "      fixing this alone saves an estimated %d bytes of peak\n", f.PeakSavingsBytes)
		}
		if f.Pattern == pattern.Overallocation {
			fmt.Fprintf(w, "      accessed elements: %.3g%%   fragmentation: %.3g%%\n",
				f.AccessedPct, f.FragmentationPct)
		}
		if f.Pattern == pattern.NonUniformAccessFrequency {
			fmt.Fprintf(w, "      access-frequency variation: %.3g%% at kernel %s\n",
				f.VariationPct, f.AtKernel)
		}
		if f.Pattern == pattern.UncoalescedAccess {
			c := r.Trace.Object(f.Object).Cost
			fmt.Fprintf(w, "      memory transactions: %d (coalesced ideal %d) at kernel %s\n",
				c.Transactions, c.IdealTransactions, f.AtKernel)
		}
		if f.CyclesSaved > 0 {
			fmt.Fprintf(w, "      modeled traffic cost: %d cycle(s); fixing saves ~%d cycle(s)\n",
				f.ModeledCycles, f.CyclesSaved)
		}
		fmt.Fprintf(w, "      suggestion: %s\n", wrap(f.Suggestion, 72, "                  "))
		if verbose {
			fmt.Fprintf(w, "      allocated at:\n%s\n",
				indent(r.Trace.Unwinder.FormatTrimmed(o.AllocPath, "drgpum/internal/gpu.", "drgpum/internal/trace.", "drgpum/internal/core."), "        "))
		}
	}

	if r.Memcheck != nil {
		fmt.Fprintf(w, "\n")
		// Render only fails when the writer fails, in which case every
		// Fprintf above already swallowed the same failure.
		_ = r.Memcheck.Render(w)
	}
}

// String renders the non-verbose report.
func (r *Report) String() string {
	var b strings.Builder
	r.Render(&b, false)
	return b.String()
}

// wrap soft-wraps s at the given width, prefixing continuation lines.
func wrap(s string, width int, contPrefix string) string {
	words := strings.Fields(s)
	if len(words) == 0 {
		return s
	}
	var b strings.Builder
	line := 0
	for i, wd := range words {
		if i > 0 {
			if line+1+len(wd) > width {
				b.WriteString("\n")
				b.WriteString(contPrefix)
				line = 0
			} else {
				b.WriteByte(' ')
				line++
			}
		}
		b.WriteString(wd)
		line += len(wd)
	}
	return b.String()
}

// indent prefixes every line of s.
func indent(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}

// jsonFinding is the serialized form of a finding. The "id" and "severity"
// keys are the unified vocabulary every tool's -json output shares
// (drgpum, drgpum-staticadv, drgpum-lint): kebab-case pattern IDs and the
// info/warning/error scale.
type jsonFinding struct {
	ID               string   `json:"id"`
	Severity         string   `json:"severity"`
	Pattern          string   `json:"pattern"`
	Abbrev           string   `json:"abbrev"`
	Object           string   `json:"object"`
	ObjectBytes      uint64   `json:"object_bytes"`
	Partner          string   `json:"partner,omitempty"`
	APIs             []string `json:"apis,omitempty"`
	Distance         uint64   `json:"distance,omitempty"`
	WastedBytes      uint64   `json:"wasted_bytes,omitempty"`
	AccessedPct      float64  `json:"accessed_pct,omitempty"`
	FragmentationPct float64  `json:"fragmentation_pct,omitempty"`
	VariationPct     float64  `json:"variation_pct,omitempty"`
	Kernel           string   `json:"kernel,omitempty"`
	PeakSavings      uint64   `json:"peak_savings_bytes,omitempty"`
	ModeledCycles    uint64   `json:"modeled_cycles,omitempty"`
	CyclesSaved      uint64   `json:"cycles_saved,omitempty"`
	Confidence       float64  `json:"confidence"`
	OnPeak           bool     `json:"on_peak"`
	Suggestion       string   `json:"suggestion"`
	AllocSite        string   `json:"alloc_site,omitempty"`
}

// jsonReport is the serialized report envelope.
type jsonReport struct {
	Device      string        `json:"device"`
	APIs        int           `json:"gpu_apis"`
	Objects     int           `json:"data_objects"`
	PeakBytes   uint64        `json:"peak_bytes"`
	Cycles      uint64        `json:"simulated_cycles"`
	PeakTops    []uint64      `json:"top_peak_bytes"`
	Findings    []jsonFinding `json:"findings"`
	DeviceMaps  int           `json:"device_map_kernels,omitempty"`
	HostMaps    int           `json:"host_map_kernels,omitempty"`
	GraphString string        `json:"dependency_graph"`
	// Advice is the what-if estimate of applying every suggestion.
	AdvicePeak         uint64  `json:"advised_peak_bytes"`
	AdviceReductionPct float64 `json:"advised_reduction_pct"`
	// CostModel summarizes the memory-hierarchy cost model when enabled.
	CostModel *jsonCostModel `json:"cost_model,omitempty"`
	// Memcheck summarizes the memory-safety report when one was taken.
	Memcheck *jsonMemcheck `json:"memcheck,omitempty"`
	// Obs is the self-observability snapshot with wall-clock fields
	// zeroed, so report JSON stays byte-identical across runs.
	Obs *obs.Snapshot `json:"obs,omitempty"`
}

// jsonCostModel is the serialized cost-model summary.
type jsonCostModel struct {
	SectorBytes   uint64 `json:"sector_bytes"`
	LineBytes     uint64 `json:"line_bytes"`
	DRAMCycles    uint64 `json:"dram_cycles"`
	TLBReachBytes uint64 `json:"tlb_reach_bytes"`
	ModeledCycles uint64 `json:"modeled_cycles"`
	CyclesSaved   uint64 `json:"cycles_saved"`
}

// jsonMemcheck is the serialized memory-safety summary.
type jsonMemcheck struct {
	Issues       int                 `json:"issues"`
	LeakBytes    uint64              `json:"leak_bytes"`
	ReadsChecked uint64              `json:"reads_checked"`
	IssueList    []jsonMemcheckIssue `json:"issue_list,omitempty"`
}

// jsonMemcheckIssue serializes one memory-safety issue with the unified
// "id"/"severity" keys every tool's JSON output shares.
type jsonMemcheckIssue struct {
	ID       string `json:"id"`
	Severity string `json:"severity"`
	Kernel   string `json:"kernel,omitempty"`
	Object   string `json:"object,omitempty"`
	Count    uint64 `json:"count"`
}

// MarshalJSON serializes the report for machine consumption.
func (r *Report) MarshalJSON() ([]byte, error) {
	jr := jsonReport{
		Device:             r.Device,
		APIs:               len(r.Trace.APIs),
		Objects:            len(r.Trace.Objects),
		PeakBytes:          r.MemStats.Peak,
		Cycles:             r.Elapsed,
		DeviceMaps:         r.ModeStats.DeviceKernels,
		HostMaps:           r.ModeStats.HostKernels,
		GraphString:        r.Graph.String(),
		AdvicePeak:         r.WhatIf.EstimatedPeak,
		AdviceReductionPct: r.WhatIf.ReductionPct,
	}
	if r.CostModel != nil {
		cm := &jsonCostModel{
			SectorBytes:   r.CostModel.SectorBytes,
			LineBytes:     r.CostModel.LineBytes,
			DRAMCycles:    r.CostModel.DRAMCycles,
			TLBReachBytes: r.CostModel.TLBReach(),
		}
		for i := range r.Findings {
			cm.ModeledCycles += r.Findings[i].ModeledCycles
			cm.CyclesSaved += r.Findings[i].CyclesSaved
		}
		jr.CostModel = cm
	}
	if r.Memcheck != nil {
		jm := &jsonMemcheck{
			Issues:       len(r.Memcheck.Issues),
			LeakBytes:    r.Memcheck.LeakBytes,
			ReadsChecked: r.Memcheck.AccessesChecked,
		}
		for _, is := range r.Memcheck.Issues {
			ji := jsonMemcheckIssue{
				ID:       is.Class.ID(),
				Severity: is.Class.Severity().String(),
				Kernel:   is.Kernel,
				Count:    is.Count,
			}
			if is.Object.Seq != 0 {
				ji.Object = is.Object.Label
			}
			jm.IssueList = append(jm.IssueList, ji)
		}
		jr.Memcheck = jm
	}
	if r.Obs != nil {
		zw := r.Obs.ZeroWall()
		jr.Obs = &zw
	}
	for _, p := range r.Peaks.Peaks {
		jr.PeakTops = append(jr.PeakTops, p.Bytes)
	}
	for i := range r.Findings {
		f := &r.Findings[i]
		o := r.Trace.Object(f.Object)
		jf := jsonFinding{
			ID:               f.Pattern.ID(),
			Severity:         classify(f).String(),
			Pattern:          f.Pattern.String(),
			Abbrev:           f.Pattern.Abbrev(),
			Object:           o.DisplayName(),
			ObjectBytes:      o.Size,
			Distance:         f.Distance,
			WastedBytes:      f.WastedBytes,
			AccessedPct:      f.AccessedPct,
			FragmentationPct: f.FragmentationPct,
			VariationPct:     f.VariationPct,
			Kernel:           f.AtKernel,
			PeakSavings:      f.PeakSavingsBytes,
			ModeledCycles:    f.ModeledCycles,
			CyclesSaved:      f.CyclesSaved,
			Confidence:       confidence(f.Pattern),
			OnPeak:           f.OnPeak,
			Suggestion:       f.Suggestion,
		}
		if f.HasPartner {
			jf.Partner = r.Trace.Object(f.Partner).DisplayName()
		}
		for _, api := range f.APIs {
			jf.APIs = append(jf.APIs, r.Trace.API(api).Label())
		}
		if leaf, ok := r.Trace.Unwinder.Leaf(o.AllocPath); ok {
			jf.AllocSite = leaf.String()
		}
		jr.Findings = append(jr.Findings, jf)
	}
	return json.MarshalIndent(jr, "", "  ")
}

// SortFindingsByObject reorders findings by (object, pattern) — the layout
// used by table generators. It returns the report for chaining.
func (r *Report) SortFindingsByObject() *Report {
	sort.SliceStable(r.Findings, func(i, j int) bool {
		if r.Findings[i].Object != r.Findings[j].Object {
			return r.Findings[i].Object < r.Findings[j].Object
		}
		return r.Findings[i].Pattern < r.Findings[j].Pattern
	})
	return r
}
