package core

import (
	"testing"

	"drgpum/internal/gpu"
	"drgpum/internal/pattern"
)

// stressProgram allocates nObjects short-lived buffers in waves, touching
// some and abandoning others — the "large codebase where allocations hide
// deep" scenario the paper motivates UA/ML detection with, at scale.
func stressProgram(dev *gpu.Device, prof *Profiler, nObjects int) error {
	const wave = 64
	var live []gpu.DevicePtr
	for i := 0; i < nObjects; i++ {
		p, err := dev.Malloc(uint64(256 * (1 + i%7)))
		if err != nil {
			return err
		}
		live = append(live, p)
		if i%3 != 2 { // two thirds get used
			target := p
			if err := dev.LaunchFunc(nil, "touch", gpu.Dim1(1), gpu.Dim1(32),
				func(ctx *gpu.ExecContext) {
					ctx.StoreU32(target, uint32(i))
				}); err != nil {
				return err
			}
		}
		if len(live) >= wave {
			// Free the wave, except every 16th object (leaks).
			for j, q := range live {
				if j%16 == 15 {
					continue
				}
				if err := dev.Free(q); err != nil {
					return err
				}
			}
			live = live[:0]
		}
	}
	for _, q := range live {
		if err := dev.Free(q); err != nil {
			return err
		}
	}
	return nil
}

// TestProfilerAtScale runs a few thousand objects through the full pipeline
// and sanity-checks the result — primarily a guard against superlinear
// blowups in the collector, memory map, dependency graph or detectors.
func TestProfilerAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	const nObjects = 4000
	dev := gpu.NewDevice(gpu.SpecRTX3090())
	prof := Attach(dev, DefaultConfig())
	if err := stressProgram(dev, prof, nObjects); err != nil {
		t.Fatal(err)
	}
	rep := prof.Finish()

	if len(rep.Trace.Objects) != nObjects {
		t.Fatalf("objects = %d", len(rep.Trace.Objects))
	}
	// Leaks: every 16th object of each full wave.
	var leaks, unused int
	for _, f := range rep.Findings {
		switch f.Pattern {
		case pattern.MemoryLeak:
			leaks++
		case pattern.UnusedAllocation:
			unused++
		}
	}
	// Each full 64-object wave leaks 4 objects; the trailing partial wave
	// is freed completely.
	wantLeaks := (nObjects / 64) * 4
	if leaks != wantLeaks {
		t.Errorf("leaks = %d, want %d", leaks, wantLeaks)
	}
	if unused != nObjects/3 {
		t.Errorf("unused = %d, want %d", unused, nObjects/3)
	}
	// Single stream: timestamps equal invocation order even at scale.
	for i, a := range rep.Trace.APIs {
		if a.Topo != uint64(i) {
			t.Fatalf("API %d topo %d", i, a.Topo)
		}
	}
	// Every finding still renders a suggestion.
	for i := range rep.Findings {
		if rep.Findings[i].Suggestion == "" {
			t.Fatalf("finding %d missing suggestion", i)
		}
	}
}
