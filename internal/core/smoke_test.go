package core

import (
	"strings"
	"testing"

	"drgpum/internal/gpu"
	"drgpum/internal/pattern"
)

// TestSmokePipeline drives a tiny program with textbook inefficiencies
// through the full profiler stack and checks that every expected pattern
// comes out with a usable suggestion.
func TestSmokePipeline(t *testing.T) {
	dev := gpu.NewDevice(gpu.SpecTest())
	p := Attach(dev, IntraObjectConfig())

	// a: early-allocated (three APIs run before its first touch) and
	// late-deallocated (freed after c's activity).
	a, err := dev.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	p.Annotate(a, "a", 4)
	// b: unused and leaked.
	b, err := dev.Malloc(2048)
	if err != nil {
		t.Fatal(err)
	}
	p.Annotate(b, "b", 4)
	// c: dead write (two memsets back to back), then a kernel reads it.
	c, err := dev.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	p.Annotate(c, "c", 4)

	if err := dev.Memset(c, 0, 4096, nil); err != nil {
		t.Fatal(err)
	}
	if err := dev.Memset(c, 1, 4096, nil); err != nil {
		t.Fatal(err)
	}

	// Kernel touches the first quarter of a and half of c.
	if err := dev.LaunchFunc(nil, "touch", gpu.Dim1(1), gpu.Dim1(32), func(ctx *gpu.ExecContext) {
		for i := 0; i < 256; i++ {
			ctx.StoreU32(a+gpu.DevicePtr(i*4), uint32(i))
		}
		for i := 0; i < 512; i++ {
			_ = ctx.LoadU8(c + gpu.DevicePtr(i*4))
		}
	}); err != nil {
		t.Fatal(err)
	}

	if err := dev.Free(c); err != nil {
		t.Fatal(err)
	}
	if err := dev.Free(a); err != nil {
		t.Fatal(err)
	}

	rep := p.Finish()

	want := []pattern.Pattern{
		pattern.EarlyAllocation,  // a
		pattern.LateDeallocation, // a freed after c's free
		pattern.UnusedAllocation, // b
		pattern.MemoryLeak,       // b
		pattern.DeadWrite,        // c
		pattern.Overallocation,   // a: 25% touched, c: 12.5% of elements
	}
	for _, w := range want {
		if !rep.HasPattern(w) {
			t.Errorf("missing pattern %s in report:\n%s", w, rep)
		}
	}

	if got := rep.PatternsForObject("b"); len(got) != 2 {
		t.Errorf("object b: want [UA ML], got %v", got)
	}

	// Dead write evidence must name the two memsets.
	dw := rep.FindingsForObject("c")
	foundDW := false
	for _, f := range dw {
		if f.Pattern == pattern.DeadWrite {
			foundDW = true
			if len(f.APIs) != 2 {
				t.Errorf("dead write should carry two evidencing APIs, got %v", f.APIs)
			}
			if !strings.Contains(f.Suggestion, "dead") {
				t.Errorf("dead-write suggestion should explain the dead store: %q", f.Suggestion)
			}
		}
	}
	if !foundDW {
		t.Errorf("no dead-write finding for c")
	}

	// The report renders without panicking and mentions the labels.
	text := rep.String()
	for _, label := range []string{"a", "b", "c"} {
		if !strings.Contains(text, label) {
			t.Errorf("report text missing object %q", label)
		}
	}

	// Topological timestamps on a single stream equal invocation order.
	for i, api := range rep.Trace.APIs {
		if api.Topo != uint64(i) {
			t.Errorf("single-stream topo order: API %d has T=%d", i, api.Topo)
		}
	}
}
