package core_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"drgpum/internal/core"
	"drgpum/internal/gpu"
	_ "drgpum/internal/gui" // registers the GUI exporter used below
	"drgpum/internal/workloads"
)

// streamWindow is the kernel-epoch length the streaming tests use: small
// enough that every workload closes several windows (and so actually
// exercises retirement), unlike the larger default.
const streamWindow = 4

// profiledReport runs one workload variant from scratch — offline or
// streaming — and returns the finished report.
func profiledReport(tb testing.TB, name string, v workloads.Variant, sequential, stream bool) *core.Report {
	tb.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		tb.Fatalf("unknown workload %s", name)
	}
	dev := gpu.NewDevice(gpu.SpecRTX3090())
	cfg := core.IntraObjectConfig()
	cfg.KernelWhitelist = w.IntraKernels
	cfg.SequentialAnalysis = sequential
	if stream {
		cfg.Streaming = core.StreamingConfig{Enabled: true, WindowKernels: streamWindow}
	}
	prof := core.Attach(dev, cfg)
	if err := w.Run(dev, prof, v); err != nil {
		tb.Fatal(err)
	}
	return prof.Finish()
}

// reportBytes serializes a report both ways the identity contract covers:
// the JSON export and the verbose text render.
func reportBytes(tb testing.TB, rep *core.Report) ([]byte, []byte) {
	tb.Helper()
	js, err := json.Marshal(rep)
	if err != nil {
		tb.Fatal(err)
	}
	var txt bytes.Buffer
	rep.Render(&txt, true)
	return js, txt.Bytes()
}

// TestStreamingDeterminism pins the streaming identity contract across the
// whole workload suite: for every workload, both variants, and both analysis
// pipelines (parallel and sequential), the streaming run's Finish report —
// produced from incrementally finalized windows over a trace whose raw
// payloads were retired — must serialize and render byte-identically to the
// offline run's. Report.Heat is deliberately outside both serializations,
// so the only difference a streamed report is allowed to have never shows
// up here.
func TestStreamingDeterminism(t *testing.T) {
	for _, name := range workloads.Names() {
		for _, v := range []workloads.Variant{workloads.VariantNaive, workloads.VariantOptimized} {
			for _, sequential := range []bool{false, true} {
				pipe := "parallel"
				if sequential {
					pipe = "sequential"
				}
				t.Run(fmt.Sprintf("%s/%s/%s", name, v, pipe), func(t *testing.T) {
					// One call site for both runs: allocation call paths
					// embed source lines, so distinct call sites would
					// differ trivially.
					var reps [2]*core.Report
					for i, stream := range []bool{false, true} {
						reps[i] = profiledReport(t, name, v, sequential, stream)
					}
					offline, streamed := reps[0], reps[1]
					offJS, offTxt := reportBytes(t, offline)
					strJS, strTxt := reportBytes(t, streamed)
					if !bytes.Equal(offJS, strJS) {
						t.Errorf("streaming JSON differs from offline (%d vs %d bytes)", len(strJS), len(offJS))
					}
					if !bytes.Equal(offTxt, strTxt) {
						t.Errorf("streaming render differs from offline (%d vs %d bytes)", len(strTxt), len(offTxt))
					}
					if streamed.Heat == nil {
						t.Fatal("streaming report has no heat map")
					}
					if len(streamed.Heat.Epochs) == 0 {
						t.Error("streaming report closed no epochs")
					}
					if !streamed.Trace.Streamed {
						t.Error("streamed trace not marked Streamed")
					}
					if offline.Heat != nil {
						t.Error("offline report unexpectedly has a heat map")
					}
				})
			}
		}
	}
}

// trainingEpochs is the test training loop's length: enough kernel-epochs
// that the streaming run closes many windows and the offline run's retained
// per-access state dominates its footprint.
const trainingEpochs = 64

// activationFloats sizes the per-epoch activation tensor. Each epoch
// allocates one, touches it from an instrumented kernel, and frees it —
// the dnnpool/multistream shape where offline analysis retains every freed
// object's access maps until Finish.
const activationFloats = 16 * 1024

// runTrainingLoop drives a deterministic training-loop-shaped workload
// directly on the device: persistent weights plus a freed-per-epoch
// activation. onEpoch (optional) runs between epochs, after the epoch's
// free — the interleave point for mid-run snapshots.
func runTrainingLoop(tb testing.TB, dev *gpu.Device, prof *core.Profiler, epochs int, onEpoch func(epoch int)) {
	tb.Helper()
	weights, err := dev.Malloc(4 * activationFloats)
	if err != nil {
		tb.Fatal(err)
	}
	prof.Annotate(weights, "weights", 4)
	for e := 0; e < epochs; e++ {
		act, err := dev.Malloc(4 * activationFloats)
		if err != nil {
			tb.Fatal(err)
		}
		prof.Annotate(act, fmt.Sprintf("activation_%03d", e), 4)
		if err := dev.Memset(act, 0, 4*activationFloats, nil); err != nil {
			tb.Fatal(err)
		}
		err = dev.LaunchFunc(nil, "train_step", gpu.Dim1(1), gpu.Dim1(64), func(ctx *gpu.ExecContext) {
			// Strided touches keep the simulated run fast while still
			// allocating full per-element access maps for both objects.
			for i := 0; i < activationFloats; i += 8 {
				w := ctx.LoadF32(weights + gpu.DevicePtr(4*i))
				ctx.StoreF32(act+gpu.DevicePtr(4*i), w+float32(e))
				ctx.StoreF32(weights+gpu.DevicePtr(4*i), w+1)
			}
		})
		if err != nil {
			tb.Fatal(err)
		}
		if err := dev.Free(act); err != nil {
			tb.Fatal(err)
		}
		if onEpoch != nil {
			onEpoch(e)
		}
	}
	if err := dev.Free(weights); err != nil {
		tb.Fatal(err)
	}
}

// trainingConfig is the training-loop profiling configuration: intra-object
// granularity with no whitelist (every launch instrumented).
func trainingConfig(sequential, stream bool) core.Config {
	cfg := core.IntraObjectConfig()
	cfg.SequentialAnalysis = sequential
	if stream {
		cfg.Streaming = core.StreamingConfig{Enabled: true, WindowKernels: streamWindow}
	}
	return cfg
}

// TestSnapshotThenFinish pins that taking mid-run snapshots — interleaved
// with collection, every few epochs — leaves the final Finish report
// byte-identical to a run that never snapshotted, for the offline and the
// streaming pipeline, parallel and sequential. Snapshots must not close
// streaming windows early, mutate detector state, or double-publish
// anything that Finish serializes.
func TestSnapshotThenFinish(t *testing.T) {
	for _, stream := range []bool{false, true} {
		for _, sequential := range []bool{false, true} {
			mode := "offline"
			if stream {
				mode = "streaming"
			}
			pipe := "parallel"
			if sequential {
				pipe = "sequential"
			}
			t.Run(mode+"/"+pipe, func(t *testing.T) {
				run := func(snapshots bool) *core.Report {
					dev := gpu.NewDevice(gpu.SpecRTX3090())
					prof := core.Attach(dev, trainingConfig(sequential, stream))
					var onEpoch func(int)
					if snapshots {
						onEpoch = func(e int) {
							if e%10 == 3 {
								if rep := prof.Snapshot(); len(rep.Findings) == 0 {
									t.Error("mid-run snapshot found nothing")
								}
							}
						}
					}
					runTrainingLoop(t, dev, prof, trainingEpochs, onEpoch)
					return prof.Finish()
				}
				// One call site for both runs: allocation call paths embed
				// source lines, so distinct call sites would differ trivially.
				var reps [2]*core.Report
				for i, snapshots := range []bool{false, true} {
					reps[i] = run(snapshots)
				}
				plainJS, plainTxt := reportBytes(t, reps[0])
				snapJS, snapTxt := reportBytes(t, reps[1])
				if !bytes.Equal(plainJS, snapJS) {
					t.Errorf("interleaved snapshots changed the Finish JSON (%d vs %d bytes)", len(snapJS), len(plainJS))
				}
				if !bytes.Equal(plainTxt, snapTxt) {
					t.Errorf("interleaved snapshots changed the Finish render (%d vs %d bytes)", len(snapTxt), len(plainTxt))
				}
			})
		}
	}
}

// residentAfterTraining runs the training loop under one pipeline and
// returns the profiler's resident heap footprint: live heap growth over the
// pre-attach baseline, measured after a GC with the profiler still attached
// (the collection-complete, pre-Finish moment a long-running service would
// sit at). The device and profiler are returned so the measurement can't be
// deflated by collecting them early.
func residentAfterTraining(tb testing.TB, stream bool) (uint64, *core.Profiler, *gpu.Device) {
	tb.Helper()
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	dev := gpu.NewDevice(gpu.SpecRTX3090())
	prof := core.Attach(dev, trainingConfig(false, stream))
	runTrainingLoop(tb, dev, prof, trainingEpochs, nil)
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc < before.HeapAlloc {
		return 0, prof, dev
	}
	return after.HeapAlloc - before.HeapAlloc, prof, dev
}

// TestStreamingResidentMemory pins the tentpole's memory bound on a
// dnnpool/multistream-style long run: with windows closing every few
// kernels, the collector's resident set — access lists, per-invocation API
// payloads, intra-object access maps — must stay bounded by the open window
// plus compact summaries. The acceptance bar is a >= 50% reduction of the
// offline pipeline's resident footprint.
func TestStreamingResidentMemory(t *testing.T) {
	offline, offProf, offDev := residentAfterTraining(t, false)
	streamed, strProf, strDev := residentAfterTraining(t, true)
	t.Logf("resident after collection: offline %d bytes, streaming %d bytes (%.1f%%)",
		offline, streamed, 100*float64(streamed)/float64(offline))
	if offline == 0 {
		t.Fatal("offline run registered no heap growth; probe is broken")
	}
	if streamed*2 > offline {
		t.Errorf("streaming resident footprint %d not <= 50%% of offline %d", streamed, offline)
	}
	// Both profilers must still produce identical reports after the probe.
	offJS, _ := reportBytes(t, offProf.Finish())
	strJS, _ := reportBytes(t, strProf.Finish())
	if !bytes.Equal(offJS, strJS) {
		t.Errorf("post-probe reports differ (%d vs %d bytes)", len(strJS), len(offJS))
	}
	runtime.KeepAlive(offDev)
	runtime.KeepAlive(strDev)
}

// TestStreamingHeatMapAndExports covers the temporal surfaces of a
// streaming run: the heat map's shape, its text render, its Perfetto track,
// and the profile-save gate on retired traces.
func TestStreamingHeatMapAndExports(t *testing.T) {
	rep := profiledReport(t, "simplemulticopy", workloads.VariantNaive, false, true)
	h := rep.Heat
	if h == nil || len(h.Epochs) == 0 {
		t.Fatal("no heat map epochs")
	}
	if h.WindowKernels != streamWindow {
		t.Errorf("WindowKernels = %d, want %d", h.WindowKernels, streamWindow)
	}
	var last uint64
	for i, e := range h.Epochs {
		if i > 0 && e.FirstAPI != last+1 {
			t.Errorf("epoch %d starts at API %d, want %d", i, e.FirstAPI, last+1)
		}
		last = e.LastAPI
		for j := 1; j < len(e.Cells); j++ {
			if e.Cells[j-1].Object >= e.Cells[j].Object {
				t.Errorf("epoch %d cells not strictly sorted by object", i)
			}
		}
	}

	var txt bytes.Buffer
	rep.RenderHeatMap(&txt)
	if !strings.Contains(txt.String(), "temporal heat map") {
		t.Errorf("heat-map render missing header:\n%s", txt.String())
	}

	var guiOut bytes.Buffer
	if err := rep.Export(&guiOut, core.FormatGUI); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(guiOut.String(), "Temporal heat map") {
		t.Error("GUI export missing the heat-map track")
	}

	if err := rep.Export(&bytes.Buffer{}, core.FormatProfile); err == nil {
		t.Error("saving a streamed profile should fail (access history retired)")
	}

	// Offline reports render a stub instead of a map.
	offline := profiledReport(t, "simplemulticopy", workloads.VariantNaive, false, false)
	txt.Reset()
	offline.RenderHeatMap(&txt)
	if !strings.Contains(txt.String(), "no heat map") {
		t.Errorf("offline heat-map render missing stub:\n%s", txt.String())
	}
}

// BenchmarkSnapshotStreaming measures a mid-run Snapshot over the
// incrementally maintained streaming state (summary graph, tracked
// timestamp bound, arrival-time detector accumulators) against
// BenchmarkSnapshotOffline, the full offline re-analysis of the same
// collection state. The streaming appendix of EXPERIMENTS.md records the
// measured ratio.
func BenchmarkSnapshotStreaming(b *testing.B) {
	benchmarkSnapshot(b, true)
}

// BenchmarkSnapshotOffline is the offline counterpart of
// BenchmarkSnapshotStreaming.
func BenchmarkSnapshotOffline(b *testing.B) {
	benchmarkSnapshot(b, false)
}

func benchmarkSnapshot(b *testing.B, stream bool) {
	dev := gpu.NewDevice(gpu.SpecRTX3090())
	prof := core.Attach(dev, trainingConfig(false, stream))
	runTrainingLoop(b, dev, prof, trainingEpochs, nil)
	b.ReportAllocs()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(prof.Snapshot().Findings)
	}
	b.ReportMetric(float64(n), "findings")
}
