package core

import (
	"sort"

	"drgpum/internal/depgraph"
	"drgpum/internal/gpu"
	"drgpum/internal/intraobj"
	"drgpum/internal/objlevel"
	"drgpum/internal/obs"
	"drgpum/internal/trace"
)

// DefaultWindowKernels is the kernel-epoch length used when
// StreamingConfig.WindowKernels is unset.
const DefaultWindowKernels = 16

// StreamingConfig enables incremental, memory-bounded analysis: GPU APIs
// are grouped into kernel-epoch windows, and when a window closes its raw
// per-invocation state — access ranges, run batches, intermediate access
// events, intra-object bitmaps of freed objects — is folded into compact
// summaries and retired. Collector resident memory becomes O(open window +
// summaries) instead of O(full history), Snapshot cost becomes
// O(delta-since-last-window), and Finish produces a report byte-identical
// to the offline pipeline (the streaming determinism tests pin this).
type StreamingConfig struct {
	// Enabled turns streaming windowed analysis on.
	Enabled bool
	// WindowKernels is how many kernel launches one epoch spans before the
	// window closes (<= 0 selects DefaultWindowKernels).
	WindowKernels int
}

// HeatCell is one object's access intensity within one epoch.
type HeatCell struct {
	// Object is the touched object.
	Object trace.ObjectID
	// Touches counts the GPU APIs of the epoch that accessed the object.
	Touches uint64
	// ExcessTransactions counts the memory transactions the cost model
	// attributed to the object during the epoch beyond the coalesced ideal
	// (zero when the cost model is off): the temporal traffic-waste track.
	ExcessTransactions uint64
}

// HeatEpoch is one closed kernel-epoch window of the temporal heat map.
type HeatEpoch struct {
	// FirstAPI and LastAPI bound the epoch (invocation indices, inclusive).
	FirstAPI uint64
	LastAPI  uint64
	// Cells lists the objects touched during the epoch, ascending by ID.
	Cells []HeatCell
}

// HeatMap is the object×epoch access-intensity matrix a streaming run
// accumulates — the temporal view the CUTHERMO-style heat-map rendering and
// the GUI heat track draw from.
type HeatMap struct {
	// WindowKernels is the epoch length the map was built with.
	WindowKernels int
	// Epochs lists the closed windows in time order.
	Epochs []HeatEpoch
}

// windowManager is the streaming ingestion hook: it observes every GPU API
// after the collector appended it, assigns topological timestamps and
// evaluates consecutive-access rules at arrival, accumulates per-epoch heat
// cells, seals the intra-object state of freed objects, and — when a window
// closes — compacts access lists and retires the window's API records.
type windowManager struct {
	t        *trace.Trace
	recorder *intraobj.Recorder // nil at object-level granularity
	inc      *depgraph.Incremental
	acc      *objlevel.Accumulator

	windowKernels int
	kernels       int    // kernel launches in the open window
	retired       uint64 // invocation index where the open window starts
	maxTopo       uint64 // incrementally tracked maximum timestamp

	curCells map[trace.ObjectID]uint64
	// curExcess/prevExcess difference the collector's cumulative per-object
	// cost into per-epoch excess-transaction deltas.
	curExcess  map[trace.ObjectID]uint64
	prevExcess map[trace.ObjectID]uint64
	heat       *HeatMap

	obsRec  *obs.Recorder
	winNode *obs.Node
}

var _ gpu.Hook = (*windowManager)(nil)

func newWindowManager(t *trace.Trace, rec *intraobj.Recorder, cfg Config) *windowManager {
	wk := cfg.Streaming.WindowKernels
	if wk <= 0 {
		wk = DefaultWindowKernels
	}
	wm := &windowManager{
		t:             t,
		recorder:      rec,
		inc:           depgraph.NewIncremental(),
		acc:           objlevel.NewAccumulator(cfg.ObjLevel),
		windowKernels: wk,
		curCells:      make(map[trace.ObjectID]uint64),
		curExcess:     make(map[trace.ObjectID]uint64),
		prevExcess:    make(map[trace.ObjectID]uint64),
		heat:          &HeatMap{WindowKernels: wk},
		obsRec:        cfg.Obs,
	}
	if root := cfg.Obs.Root(); root != nil {
		wm.winNode = root.Child("ingest").Child("window")
	}
	return wm
}

// OnAPI implements gpu.Hook. It runs after the collector's OnAPI (hook
// order), so t.APIs[rec.Index] exists, the object touch sets are final, and
// lifetime endpoints are recorded — everything arrival-time analysis needs.
func (wm *windowManager) OnAPI(rec *gpu.APIRecord) {
	sp := wm.winNode.Start()
	info := wm.t.APIs[rec.Index]

	// Assign the final topological timestamp and fold dependency edges.
	wm.inc.Observe(wm.t, info)
	if info.Topo > wm.maxTopo {
		wm.maxTopo = info.Topo
	}

	// Feed each touched object's final event to the consecutive-access
	// accumulator and bump its heat cell.
	for _, id := range mergeTouched(info.ReadObjs, info.WriteObjs) {
		o := wm.t.Object(id)
		if ev := o.LastAccess(); ev != nil && ev.API == rec.Index {
			wm.acc.Observe(wm.t, id, *ev)
		}
		wm.curCells[id]++
		// The collector's OnAPI already folded this kernel's cost into the
		// object's cumulative counters; differencing against the previous
		// observation yields this epoch's traffic-waste delta.
		if rec.Kind == gpu.APIKernel && rec.Cost != nil {
			if ex := o.Cost.ExcessTransactions(); ex > wm.prevExcess[id] {
				wm.curExcess[id] += ex - wm.prevExcess[id]
				wm.prevExcess[id] = ex
			}
		}
	}

	switch rec.Kind {
	case gpu.APIFree:
		if wm.recorder != nil && info.HasObj {
			wm.recorder.Seal(int(info.Obj))
			wm.obsRec.AddNamed(obs.NamedWindowObjectsSealed, 1)
		}
	case gpu.APIKernel:
		wm.kernels++
		if wm.kernels >= wm.windowKernels {
			wm.closeWindow(rec.Index)
		}
	}
	sp.End()
}

// OnAccessBatch implements gpu.Hook. Access batches are consumed upstream
// (collector attribution, intra-object recorder); the window manager only
// acts at API boundaries.
func (wm *windowManager) OnAccessBatch(*gpu.APIRecord, []gpu.MemAccess) {}

// closeWindow finalizes the open window ending at invocation index upTo:
// record its heat epoch, compact the access lists of its touched objects,
// and retire its API records.
func (wm *windowManager) closeWindow(upTo uint64) {
	// A window close is the kernel-epoch merge point for sharded pipelined
	// ingestion: drain the shard workers and fold their counters before
	// retiring the window, so seal/retire act on settled per-object state.
	if wm.recorder != nil {
		wm.recorder.SyncIngest()
	}
	cells := make([]HeatCell, 0, len(wm.curCells))
	for id, n := range wm.curCells {
		cells = append(cells, HeatCell{Object: id, Touches: n, ExcessTransactions: wm.curExcess[id]})
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Object < cells[j].Object })
	wm.heat.Epochs = append(wm.heat.Epochs, HeatEpoch{
		FirstAPI: wm.retired,
		LastAPI:  upTo,
		Cells:    cells,
	})

	// Every event of a closed window has been consumed: timestamps and
	// dependency edges at arrival, consecutive-access rules by the
	// accumulator, intra-object maps by the recorder. What Finish still
	// needs from an object is only its first/last event, which compaction
	// preserves; what it needs from an API is identity and timestamp, which
	// retirement preserves.
	for i := range cells {
		wm.t.Object(cells[i].Object).CompactAccesses()
	}
	retired := uint64(0)
	for idx := wm.retired; idx <= upTo && idx < uint64(len(wm.t.APIs)); idx++ {
		if a := wm.t.APIs[idx]; a != nil {
			a.Retire()
			retired++
		}
	}
	wm.t.Streamed = true
	wm.retired = upTo + 1
	wm.kernels = 0
	clear(wm.curCells)
	clear(wm.curExcess)

	wm.obsRec.AddNamed(obs.NamedWindowsClosed, 1)
	wm.obsRec.AddNamed(obs.NamedWindowAPIsRetired, retired)
}

// finish closes the trailing partial window. Only Finish calls this —
// Snapshot must leave the open window open, so interleaved snapshots do not
// change what Finish reports.
func (wm *windowManager) finish() {
	if n := uint64(len(wm.t.APIs)); wm.retired < n {
		wm.closeWindow(n - 1)
	}
}

// Heat returns the accumulated temporal heat map.
func (wm *windowManager) Heat() *HeatMap { return wm.heat }

// mergeTouched unions an API's read and write object sets. Each set is
// duplicate-free but in first-touch order, so this deduplicates by linear
// scan and sorts ascending for a deterministic visit order.
func mergeTouched(reads, writes []trace.ObjectID) []trace.ObjectID {
	if len(writes) == 0 {
		return reads
	}
	if len(reads) == 0 {
		return writes
	}
	out := make([]trace.ObjectID, 0, len(reads)+len(writes))
	out = append(out, reads...)
	for _, id := range writes {
		dup := false
		for _, x := range out {
			if x == id {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
