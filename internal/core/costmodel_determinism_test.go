package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"drgpum/internal/core"
	"drgpum/internal/gpu"
	"drgpum/internal/pattern"
	"drgpum/internal/workloads"
)

// costMode names one execution mode of the cost determinism matrix.
type costMode struct {
	name                 string
	sequential           bool // Config.SequentialAnalysis
	pipelined, streaming bool
}

// costModes is the full mode matrix: strictly sequential analysis, the
// default concurrent offline analysis, pipelined ingest with sharded
// accumulation, and streaming windowed retirement. Cost accounting rides
// the synchronous kernel execution path in every one of them, so modeled
// cycles must be bit-equal across the matrix.
var costModes = []costMode{
	{name: "sequential", sequential: true},
	{name: "parallel"},
	{name: "pipelined", pipelined: true},
	{name: "streaming", streaming: true},
}

// costReport profiles one workload variant under one mode with the cost
// model at its default (enabled) configuration.
func costReport(tb testing.TB, w *workloads.Workload, v workloads.Variant, m costMode) *core.Report {
	tb.Helper()
	dev := gpu.NewDevice(gpu.SpecRTX3090())
	cfg := core.IntraObjectConfig()
	cfg.KernelWhitelist = w.IntraKernels
	cfg.SequentialAnalysis = m.sequential
	if m.pipelined {
		cfg.PipelinedIngest = true
		cfg.PipelineShards = pipelineShards
	}
	if m.streaming {
		cfg.Streaming = core.StreamingConfig{Enabled: true, WindowKernels: streamWindow}
	}
	prof := core.Attach(dev, cfg)
	if err := w.Run(dev, prof, v); err != nil {
		tb.Fatal(err)
	}
	return prof.Finish()
}

// costFingerprint reduces a report to the cost-model facts the matrix
// compares: every finding's (pattern, object, kernel, cycles) tuple in
// advice order plus the per-object modeled-cycle totals.
func costFingerprint(rep *core.Report) string {
	var b bytes.Buffer
	for _, a := range rep.Advice() {
		fmt.Fprintf(&b, "%s %s %s modeled=%d saved=%d\n",
			a.PatternID, a.Object, a.Kernel, a.ModeledCycles, a.CyclesSaved)
	}
	for _, o := range rep.Trace.Objects {
		fmt.Fprintf(&b, "obj %s cycles=%d excess=%d\n",
			o.DisplayName(), o.Cost.ModeledCycles, o.Cost.ExcessTransactions())
	}
	return b.String()
}

// TestCostModelDeterminism pins the cost model's mode independence: the
// modeled cycles attached to objects and findings — and therefore the
// cycles-ranked advice order — must be byte-identical whether the analysis
// ran sequentially, concurrently, pipelined, or streaming. The uncoalesced
// workloads are the interesting rows (their advice exists only because of
// the model); polybench/2mm covers the mixed case where cost cycles rank
// findings other detectors produced.
func TestCostModelDeterminism(t *testing.T) {
	for _, name := range []string{"sdk/matrixtranspose", "sdk/particles", "polybench/2mm"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %s", name)
		}
		for _, v := range []workloads.Variant{workloads.VariantNaive, workloads.VariantOptimized} {
			t.Run(fmt.Sprintf("%s/%s", name, v), func(t *testing.T) {
				// One call site for every mode: allocation call paths embed
				// source lines, so distinct call sites would differ trivially.
				reps := make([]*core.Report, len(costModes))
				for i, m := range costModes {
					reps[i] = costReport(t, w, v, m)
				}
				base := costFingerprint(reps[0])
				if base == "" {
					t.Fatal("empty cost fingerprint; test is vacuous")
				}
				for i := 1; i < len(costModes); i++ {
					if got := costFingerprint(reps[i]); got != base {
						t.Errorf("%s cost fingerprint differs from %s:\n--- %s\n%s\n--- %s\n%s",
							costModes[i].name, costModes[0].name,
							costModes[0].name, base, costModes[i].name, got)
					}
				}
				baseJS, _ := reportBytes(t, reps[0])
				for i := 1; i < len(costModes); i++ {
					js, _ := reportBytes(t, reps[i])
					if !bytes.Equal(baseJS, js) {
						t.Errorf("%s report JSON differs from %s (%d vs %d bytes)",
							costModes[i].name, costModes[0].name, len(js), len(baseJS))
					}
				}
				if v == workloads.VariantNaive {
					// The naive variants exist to exhibit uncoalesced access:
					// the advice must carry it with nonzero modeled cycles.
					found := false
					for _, a := range reps[0].Advice() {
						if a.PatternID == pattern.UncoalescedAccess.ID() && name != "polybench/2mm" {
							found = true
							if a.CyclesSaved == 0 || a.ModeledCycles == 0 {
								t.Errorf("uncoalesced advice with zero cycles: %+v", a)
							}
						}
					}
					if !found && name != "polybench/2mm" {
						t.Error("naive variant produced no uncoalesced-access advice")
					}
				}
			})
		}
	}
}
