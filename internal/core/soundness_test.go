package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"drgpum/internal/gpu"
	"drgpum/internal/pattern"
	"drgpum/internal/trace"
)

// TestDetectorSoundnessFuzz is the paper's §5.6 no-false-positive property
// as a machine-checked statement: for randomized programs, every finding
// the profiler reports must be an independently re-derivable fact of the
// trace. The verifier below shares no code with the detectors — it reasons
// straight from the object records.
func TestDetectorSoundnessFuzz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := gpu.NewDevice(gpu.SpecTest())
		cfg := IntraObjectConfig()
		prof := Attach(dev, cfg)

		streams := []*gpu.Stream{nil, dev.CreateStream()}
		var live []gpu.DevicePtr
		sizes := []uint64{256, 512, 1024, 2048}

		for op := 0; op < 60; op++ {
			switch rng.Intn(6) {
			case 0, 1:
				if p, err := dev.Malloc(sizes[rng.Intn(len(sizes))]); err == nil {
					live = append(live, p)
				}
			case 2:
				if len(live) > 0 {
					p := live[rng.Intn(len(live))]
					_ = dev.Memset(p, byte(op), 64, streams[rng.Intn(2)])
				}
			case 3:
				if len(live) > 0 {
					p := live[rng.Intn(len(live))]
					_ = dev.MemcpyHtoD(p, make([]byte, 64), streams[rng.Intn(2)])
				}
			case 4:
				if len(live) > 0 {
					p := live[rng.Intn(len(live))]
					write := rng.Intn(2) == 0
					span := rng.Intn(32) + 1
					_ = dev.LaunchFunc(streams[rng.Intn(2)], "fz", gpu.Dim1(1), gpu.Dim1(1),
						func(ctx *gpu.ExecContext) {
							for i := 0; i < span; i++ {
								addr := p + gpu.DevicePtr(i*4)
								if write {
									ctx.StoreU32(addr, uint32(i))
								} else {
									_ = ctx.LoadU32(addr)
								}
							}
						})
				}
			case 5:
				if len(live) > 0 && rng.Intn(3) == 0 {
					i := rng.Intn(len(live))
					if dev.Free(live[i]) == nil {
						live = append(live[:i], live[i+1:]...)
					}
				}
			}
		}

		rep := prof.Finish()
		for i := range rep.Findings {
			if msg := verifyFinding(rep, &rep.Findings[i], cfg); msg != "" {
				t.Errorf("seed %d: unsound finding %s on object %d: %s",
					seed, rep.Findings[i].Pattern, rep.Findings[i].Object, msg)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// verifyFinding re-derives an object-level finding from the raw trace. It
// returns a non-empty diagnosis when the finding is not a literal fact.
func verifyFinding(rep *Report, f *pattern.Finding, cfg Config) string {
	tr := rep.Trace
	o := tr.Object(f.Object)

	switch f.Pattern {
	case pattern.EarlyAllocation:
		first := o.FirstAccess()
		if first == nil {
			return "object never accessed"
		}
		if tr.Intervening(o.AllocAPI, first.API) == 0 {
			return "no API between allocation and first access"
		}
	case pattern.LateDeallocation:
		last := o.LastAccess()
		if last == nil || !o.Freed() {
			return "no access/free pair"
		}
		if tr.Intervening(last.API, uint64(o.FreeAPI)) == 0 {
			return "no API between last access and free"
		}
	case pattern.UnusedAllocation:
		if len(o.Accesses) != 0 {
			return "object was accessed"
		}
	case pattern.MemoryLeak:
		if o.Freed() {
			return "object was freed"
		}
	case pattern.TemporaryIdleness:
		if len(f.Windows) == 0 {
			return "no windows"
		}
		for _, w := range f.Windows {
			if !consecutiveAccesses(o, w.FromAPI, w.ToAPI) {
				return "window endpoints are not consecutive accesses"
			}
			if tr.Intervening(w.FromAPI, w.ToAPI) < cfg.ObjLevel.IdlenessThreshold {
				return "window below the idleness threshold"
			}
		}
	case pattern.DeadWrite:
		for _, w := range f.Windows {
			if !consecutiveAccesses(o, w.FromAPI, w.ToAPI) {
				return "write pair not consecutive"
			}
			a := accessOf(o, w.FromAPI)
			b := accessOf(o, w.ToAPI)
			if a == nil || b == nil || !a.Write || !b.Write || b.Read {
				return "pair is not write-then-overwrite"
			}
			if !copySet(a.APIKind) || !copySet(b.APIKind) {
				return "dead-write pair includes a kernel"
			}
		}
	case pattern.RedundantAllocation:
		if !f.HasPartner {
			return "no partner"
		}
		donor := tr.Object(f.Partner)
		dl, of := donor.LastAccess(), o.FirstAccess()
		if dl == nil || of == nil {
			return "missing access windows"
		}
		if tr.API(dl.API).Topo >= tr.API(of.API).Topo {
			return "donor window does not end before receiver's begins"
		}
		hi := o.Size
		if donor.Size > hi {
			hi = donor.Size
		}
		var diff uint64
		if o.Size > donor.Size {
			diff = o.Size - donor.Size
		} else {
			diff = donor.Size - o.Size
		}
		if float64(diff) > cfg.ObjLevel.RedundantSizeTolerance*float64(hi) {
			return "sizes outside the tolerance"
		}
	case pattern.Overallocation:
		if f.AccessedPct >= cfg.IntraObj.OverallocThreshold {
			return "accessed percentage above threshold"
		}
		if f.FragmentationPct >= cfg.IntraObj.OverallocFragThreshold {
			return "fragmentation above the investigation gate"
		}
	case pattern.NonUniformAccessFrequency:
		if f.VariationPct <= cfg.IntraObj.NUAFThreshold {
			return "variation below threshold"
		}
	case pattern.StructuredAccess:
		// Structural property over internal recorder state; exercised by
		// the dedicated intraobj tests.
	}

	if f.Suggestion == "" {
		return "missing suggestion"
	}
	return ""
}

// consecutiveAccesses reports whether a and b are adjacent entries of the
// object's access list.
func consecutiveAccesses(o *trace.Object, a, b uint64) bool {
	for i := 1; i < len(o.Accesses); i++ {
		if o.Accesses[i-1].API == a && o.Accesses[i].API == b {
			return true
		}
	}
	return false
}

// accessOf finds the object's access event for an API.
func accessOf(o *trace.Object, api uint64) *trace.AccessEvent {
	for i := range o.Accesses {
		if o.Accesses[i].API == api {
			return &o.Accesses[i]
		}
	}
	return nil
}

// copySet reports whether the API kind is a memory copy or set.
func copySet(k gpu.APIKind) bool {
	return k == gpu.APIMemcpy || k == gpu.APIMemset
}
