package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"drgpum/internal/core"
	"drgpum/internal/gpu"
	"drgpum/internal/workloads"
)

// pipelineShards is the shard-worker count the identity tests pin the
// pipelined runs at. Two is enough to exercise real cross-shard routing
// (objects land on different workers) without assuming test-machine
// parallelism; TestPipelinedShardInvariance covers the other counts.
const pipelineShards = 2

// pipelineReport runs one workload variant from scratch, either through
// the plain sequential pipeline (the identity baseline: one goroutine,
// Config.SequentialAnalysis) or through the pipelined one (double-
// buffered access hand-off plus sharded intra-object accumulation).
func pipelineReport(tb testing.TB, name string, v workloads.Variant, pipelined, stream bool, shards int) *core.Report {
	tb.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		tb.Fatalf("unknown workload %s", name)
	}
	dev := gpu.NewDevice(gpu.SpecRTX3090())
	cfg := core.IntraObjectConfig()
	cfg.KernelWhitelist = w.IntraKernels
	if pipelined {
		cfg.PipelinedIngest = true
		cfg.PipelineShards = shards
	} else {
		cfg.SequentialAnalysis = true
	}
	if stream {
		cfg.Streaming = core.StreamingConfig{Enabled: true, WindowKernels: streamWindow}
	}
	prof := core.Attach(dev, cfg)
	if err := w.Run(dev, prof, v); err != nil {
		tb.Fatal(err)
	}
	return prof.Finish()
}

// exportBytes serializes a report through one registered exporter.
func exportBytes(tb testing.TB, rep *core.Report, f core.Format) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := rep.Export(&buf, f); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestPipelinedDeterminism pins the pipelined identity contract across the
// whole workload suite: for every workload, both variants, offline and
// streaming, a run whose accesses were handed to a consumer goroutine and
// whose per-object accumulators were updated by shard workers must
// serialize byte-identically — report JSON, verbose render, GUI export,
// and (offline) the saved profile — to the strictly sequential pipeline.
// The contract is the same one TestStreamingDeterminism pins for windows:
// concurrency is an execution detail, never an output.
func TestPipelinedDeterminism(t *testing.T) {
	for _, name := range workloads.Names() {
		for _, v := range []workloads.Variant{workloads.VariantNaive, workloads.VariantOptimized} {
			for _, stream := range []bool{false, true} {
				mode := "offline"
				if stream {
					mode = "streaming"
				}
				t.Run(fmt.Sprintf("%s/%s/%s", name, v, mode), func(t *testing.T) {
					// One call site for both runs: allocation call paths
					// embed source lines, so distinct call sites would
					// differ trivially.
					var reps [2]*core.Report
					for i, pipelined := range []bool{false, true} {
						reps[i] = pipelineReport(t, name, v, pipelined, stream, pipelineShards)
					}
					seq, piped := reps[0], reps[1]
					seqJS, seqTxt := reportBytes(t, seq)
					pipJS, pipTxt := reportBytes(t, piped)
					if !bytes.Equal(seqJS, pipJS) {
						t.Errorf("pipelined JSON differs from sequential (%d vs %d bytes)", len(pipJS), len(seqJS))
					}
					if !bytes.Equal(seqTxt, pipTxt) {
						t.Errorf("pipelined render differs from sequential (%d vs %d bytes)", len(pipTxt), len(seqTxt))
					}
					if !bytes.Equal(exportBytes(t, seq, core.FormatGUI), exportBytes(t, piped, core.FormatGUI)) {
						t.Error("pipelined GUI export differs from sequential")
					}
					if !stream {
						if !bytes.Equal(exportBytes(t, seq, core.FormatProfile), exportBytes(t, piped, core.FormatProfile)) {
							t.Error("pipelined saved profile differs from sequential")
						}
					}
				})
			}
		}
	}
}

// TestPipelinedMemcheckDeterminism pins the identity contract for the
// memcheck checker specifically: its OnAccessBatch shadow updates now run
// on the pipeline's consumer goroutine, so the planted-bug workload —
// whose report includes the memcheck findings section — must serialize
// byte-identically whether the checker was fed synchronously or through
// the hand-off.
func TestPipelinedMemcheckDeterminism(t *testing.T) {
	w := workloads.KnownBad()
	run := func(pipelined bool) *core.Report {
		dev := gpu.NewDevice(gpu.SpecRTX3090())
		cfg := core.IntraObjectConfig()
		cfg.KernelWhitelist = w.IntraKernels
		cfg.Memcheck = true
		if pipelined {
			cfg.PipelinedIngest = true
			cfg.PipelineShards = pipelineShards
		} else {
			cfg.SequentialAnalysis = true
		}
		prof := core.Attach(dev, cfg)
		if err := w.Run(dev, prof, workloads.VariantNaive); err != nil {
			t.Fatal(err)
		}
		return prof.Finish()
	}
	// One call site for both runs (call paths embed source lines).
	var reps [2]*core.Report
	for i, pipelined := range []bool{false, true} {
		reps[i] = run(pipelined)
	}
	seq, piped := reps[0], reps[1]
	if seq.Memcheck == nil || len(seq.Memcheck.Issues) == 0 {
		t.Fatal("sequential knownbad run produced no memcheck findings; test is vacuous")
	}
	seqJS, seqTxt := reportBytes(t, seq)
	pipJS, pipTxt := reportBytes(t, piped)
	if !bytes.Equal(seqJS, pipJS) {
		t.Errorf("pipelined memcheck JSON differs from sequential (%d vs %d bytes)", len(pipJS), len(seqJS))
	}
	if !bytes.Equal(seqTxt, pipTxt) {
		t.Errorf("pipelined memcheck render differs from sequential (%d vs %d bytes)", len(pipTxt), len(seqTxt))
	}
}

// TestPipelinedShardInvariance pins that the shard count is a pure
// throughput knob: 0 shards (hand-off only, router finalizes inline), 1,
// and 3 must all produce the bytes that 2 shards — and, transitively via
// TestPipelinedDeterminism, the sequential pipeline — produce. This is
// the determinism argument of DESIGN.md §4.9 made executable: per-object
// work is order-independent across shards, global decisions stay on the
// router, merged counters are commutative sums.
func TestPipelinedShardInvariance(t *testing.T) {
	const name = "simplemulticopy"
	var base []byte
	for _, shards := range []int{2, 0, 1, 3} {
		rep := pipelineReport(t, name, workloads.VariantNaive, true, true, shards)
		js, _ := reportBytes(t, rep)
		if base == nil {
			base = js
			continue
		}
		if !bytes.Equal(base, js) {
			t.Errorf("shards=%d report differs from shards=2 (%d vs %d bytes)", shards, len(js), len(base))
		}
	}
}

// TestPipelinedSnapshotThenFinish pins the pipelined form of the snapshot
// contract: mid-run Snapshots — which force a shard merge barrier while
// the pipeline stays attached — must leave the Finish report
// byte-identical to an uninterrupted pipelined run, offline and
// streaming.
func TestPipelinedSnapshotThenFinish(t *testing.T) {
	for _, stream := range []bool{false, true} {
		mode := "offline"
		if stream {
			mode = "streaming"
		}
		t.Run(mode, func(t *testing.T) {
			run := func(snapshots bool) *core.Report {
				dev := gpu.NewDevice(gpu.SpecRTX3090())
				cfg := trainingConfig(false, stream)
				cfg.PipelinedIngest = true
				cfg.PipelineShards = pipelineShards
				prof := core.Attach(dev, cfg)
				var onEpoch func(int)
				if snapshots {
					onEpoch = func(e int) {
						if e%10 == 3 {
							if rep := prof.Snapshot(); len(rep.Findings) == 0 {
								t.Error("mid-run snapshot found nothing")
							}
						}
					}
				}
				runTrainingLoop(t, dev, prof, trainingEpochs, onEpoch)
				return prof.Finish()
			}
			// One call site for both runs (call paths embed source lines).
			var reps [2]*core.Report
			for i, snapshots := range []bool{false, true} {
				reps[i] = run(snapshots)
			}
			plainJS, plainTxt := reportBytes(t, reps[0])
			snapJS, snapTxt := reportBytes(t, reps[1])
			if !bytes.Equal(plainJS, snapJS) {
				t.Errorf("interleaved snapshots changed the pipelined Finish JSON (%d vs %d bytes)", len(snapJS), len(plainJS))
			}
			if !bytes.Equal(plainTxt, snapTxt) {
				t.Errorf("interleaved snapshots changed the pipelined Finish render (%d vs %d bytes)", len(snapTxt), len(plainTxt))
			}
		})
	}
}
