package gpu

import "errors"

// ErrEventNotRecorded is returned when waiting on an event that was never
// recorded.
var ErrEventNotRecorded = errors.New("gpu: event has not been recorded")

// Event is a CUDA-style stream marker: recording captures a stream's
// simulated clock, and other streams (or the host) can wait for that point.
// Events are how real multi-stream programs (including the paper's
// simpleMultiCopy sample) order work across streams without full device
// synchronization; in the simulator they only constrain clocks — they are
// not GPU APIs in the paper's Definition 5.1 sense and therefore do not
// appear in the dependency graph or the trace.
type Event struct {
	recorded bool
	cycle    uint64
}

// NewEvent creates an unrecorded event (the cudaEventCreate analog).
func (d *Device) NewEvent() *Event { return &Event{} }

// EventRecord captures the current position of the stream (nil means the
// default stream). Re-recording overwrites the previous capture, as CUDA
// does.
func (d *Device) EventRecord(e *Event, s *Stream) {
	if s == nil {
		s = d.defaultStream
	}
	e.recorded = true
	e.cycle = s.clock
}

// StreamWaitEvent makes the stream wait until the event's recorded point:
// the stream's clock advances to at least the captured cycle. Waiting on an
// unrecorded event is an error (CUDA treats it as a no-op with an sticky
// error state; the simulator is stricter to surface bugs).
func (d *Device) StreamWaitEvent(s *Stream, e *Event) error {
	if !e.recorded {
		return ErrEventNotRecorded
	}
	if s == nil {
		s = d.defaultStream
	}
	if s.clock < e.cycle {
		s.clock = e.cycle
	}
	return nil
}

// EventSynchronize blocks the host until the event's point has been
// reached. In the simulator host time is implicit, so this simply reports
// whether the event was recorded; it exists for API parity.
func (d *Device) EventSynchronize(e *Event) error {
	if !e.recorded {
		return ErrEventNotRecorded
	}
	return nil
}

// EventElapsed returns the simulated cycles between two recorded events
// (the cudaEventElapsedTime analog, in cycles rather than milliseconds).
func EventElapsed(start, end *Event) (uint64, error) {
	if !start.recorded || !end.recorded {
		return 0, ErrEventNotRecorded
	}
	if end.cycle < start.cycle {
		return 0, nil
	}
	return end.cycle - start.cycle, nil
}
