package gpu

import (
	"errors"
	"testing"
)

func TestFaultPlanFailAllocs(t *testing.T) {
	a := NewAllocator(1<<20, 0)
	a.SetFaultPlan(FaultPlan{FailAllocs: []uint64{1, 3}})

	if _, err := a.Alloc(64); err != nil {
		t.Fatalf("alloc #0: %v", err)
	}
	if _, err := a.Alloc(64); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("alloc #1: got %v, want injected ErrOutOfMemory", err)
	}
	if _, err := a.Alloc(64); err != nil {
		t.Fatalf("alloc #2: %v", err)
	}
	if _, err := a.Alloc(64); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("alloc #3: got %v, want injected ErrOutOfMemory", err)
	}
	st := a.Stats()
	if st.InjectedFaults != 2 {
		t.Errorf("InjectedFaults = %d, want 2", st.InjectedFaults)
	}
	if st.LiveAllocations != 2 {
		t.Errorf("LiveAllocations = %d, want 2 (failed allocs must not reserve)", st.LiveAllocations)
	}
}

func TestFaultPlanFailEvery(t *testing.T) {
	a := NewAllocator(1<<20, 0)
	a.SetFaultPlan(FaultPlan{FailEvery: 3})
	var failed []int
	for i := 0; i < 9; i++ {
		if _, err := a.Alloc(32); err != nil {
			failed = append(failed, i)
		}
	}
	want := []int{2, 5, 8}
	if len(failed) != len(want) {
		t.Fatalf("failed indices %v, want %v", failed, want)
	}
	for i := range want {
		if failed[i] != want[i] {
			t.Fatalf("failed indices %v, want %v", failed, want)
		}
	}
}

func TestFaultPlanSeededRateDeterministic(t *testing.T) {
	pattern := func() []bool {
		a := NewAllocator(1<<24, 0)
		a.SetFaultPlan(FaultPlan{FailRate: 0.3, Seed: 42})
		out := make([]bool, 200)
		var fails int
		for i := range out {
			_, err := a.Alloc(16)
			out[i] = err != nil
			if err != nil {
				fails++
			}
		}
		if fails == 0 || fails == len(out) {
			t.Fatalf("rate 0.3 produced %d/%d failures", fails, len(out))
		}
		return out
	}
	p1, p2 := pattern(), pattern()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("seeded failure pattern differs at alloc #%d", i)
		}
	}
}

func TestFaultPlanIndexIndependence(t *testing.T) {
	// The rate draw must be a pure function of (seed, index): the same
	// index fails identically whether or not earlier allocations happened.
	plan := FaultPlan{FailRate: 0.5, Seed: 7}
	for idx := uint64(0); idx < 64; idx++ {
		if plan.shouldFail(idx) != plan.shouldFail(idx) {
			t.Fatalf("shouldFail(%d) is not stable", idx)
		}
	}
}

func TestDeviceInjectFaults(t *testing.T) {
	d := NewDevice(SpecRTX3090())
	d.SetPatchLevel(PatchAPI)
	var records int
	d.AddHook(hookFunc(func(rec *APIRecord) { records++ }))

	d.InjectFaults(FaultPlan{FailAllocs: []uint64{0}})
	if _, err := d.Malloc(128); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("injected Malloc: got %v, want ErrOutOfMemory", err)
	}
	if records != 0 {
		t.Errorf("failed Malloc emitted %d API records, want 0", records)
	}
	ptr, err := d.Malloc(128)
	if err != nil {
		t.Fatalf("second Malloc: %v", err)
	}
	if records != 1 {
		t.Errorf("successful Malloc emitted %d API records, want 1", records)
	}
	if err := d.Free(ptr); err != nil {
		t.Fatal(err)
	}
}

// hookFunc adapts a function to gpu.Hook for tests.
type hookFunc func(rec *APIRecord)

func (f hookFunc) OnAPI(rec *APIRecord)                  { f(rec) }
func (f hookFunc) OnAccessBatch(*APIRecord, []MemAccess) {}

func TestRedzoneLayoutAndFindNear(t *testing.T) {
	a := NewAllocator(1<<20, 256)
	a.SetRedzone(1) // rounds up to one alignment unit
	if a.Redzone() != 256 {
		t.Fatalf("Redzone() = %d, want 256", a.Redzone())
	}

	p1, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(p1)%256 != 0 || uint64(p2)%256 != 0 {
		t.Errorf("red-zoned pointers not aligned: 0x%x 0x%x", uint64(p1), uint64(p2))
	}
	// Layout: [rz][256 user][rz][rz][256 user][rz] — adjacent allocations
	// are separated by two guard units.
	if got, want := uint64(p2-p1), uint64(256+2*256); got != want {
		t.Errorf("allocation stride = %d, want %d", got, want)
	}

	// One byte past p1's requested size: outside the user range, inside the
	// reserved span (alignment padding), attributed to p1.
	if r, ok := a.FindNear(p1 + 100); !ok || r.Addr != p1 || r.Size != 100 {
		t.Errorf("FindNear(end+0) = %v, %v", r, ok)
	}
	// Inside p1's trailing red zone.
	if r, ok := a.FindNear(p1 + 256 + 10); !ok || r.Addr != p1 {
		t.Errorf("FindNear(redzone) = %v, %v", r, ok)
	}
	// Inside p2's leading red zone.
	if r, ok := a.FindNear(p2 - 1); !ok || r.Addr != p2 {
		t.Errorf("FindNear(p2-1) = %v, %v; want attribution to p2", r, ok)
	}
	// Far past everything.
	if _, ok := a.FindNear(p2 + 1<<18); ok {
		t.Error("FindNear matched a wild address")
	}

	// lookup must still resolve only the user range.
	if b := a.lookup(p1 + 99); b == nil || b.addr != p1 {
		t.Error("lookup lost the user range")
	}
	if b := a.lookup(p1 + 100); b != nil {
		t.Error("lookup resolved past the requested size")
	}
}

func TestSetRedzoneAfterAllocPanics(t *testing.T) {
	a := NewAllocator(1<<20, 0)
	if _, err := a.Alloc(8); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("SetRedzone after allocation did not panic")
		}
	}()
	a.SetRedzone(64)
}

func TestQuarantineDelaysReuse(t *testing.T) {
	a := NewAllocator(1<<20, 256)
	a.SetQuarantine(4096)

	p1, err := a.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	if r, ok := a.InQuarantine(p1 + 8); !ok || r.Addr != p1 || r.Size != 256 {
		t.Fatalf("InQuarantine(freed) = %v, %v", r, ok)
	}
	if a.Stats().QuarantinedBytes == 0 {
		t.Error("QuarantinedBytes = 0 after a quarantined free")
	}

	// The freed address must not be handed out again while quarantined.
	p2, err := a.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p1 {
		t.Error("quarantined address was reused immediately")
	}

	// Overflowing the budget drains the oldest span back to the free list.
	var frees []DevicePtr
	for i := 0; i < 20; i++ {
		p, err := a.Alloc(256)
		if err != nil {
			t.Fatal(err)
		}
		frees = append(frees, p)
	}
	for _, p := range frees {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := a.InQuarantine(p1); ok {
		t.Error("oldest span still quarantined after budget overflow")
	}
	if got := a.Stats().QuarantinedBytes; got > 4096 {
		t.Errorf("QuarantinedBytes = %d exceeds the 4096 budget", got)
	}

	// Disabling the quarantine drains everything.
	a.SetQuarantine(0)
	if got := a.Stats().QuarantinedBytes; got != 0 {
		t.Errorf("QuarantinedBytes = %d after disable, want 0", got)
	}
}

func TestQuarantinedKernelAccessFaults(t *testing.T) {
	d := NewDevice(SpecRTX3090())
	d.Allocator().SetQuarantine(1 << 16)
	d.SetPatchLevel(PatchAPI)

	ptr, err := d.Malloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Free(ptr); err != nil {
		t.Fatal(err)
	}

	var faults []Fault
	d.AddHook(hookFunc(func(rec *APIRecord) {
		if rec.Kind == APIKernel {
			faults = append(faults, rec.Faults...)
		}
	}))
	err = d.LaunchFunc(nil, "stale_reader", Dim1(1), Dim1(1), func(ctx *ExecContext) {
		ctx.LoadU32(ptr)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 1 || faults[0].Addr != ptr {
		t.Fatalf("faults = %v, want one at 0x%x", faults, uint64(ptr))
	}
}
