package gpu

import "fmt"

// FaultPlan is a deterministic allocator fault schedule. The simulator's
// memory-safety and robustness tests use it to exercise failure paths —
// out-of-memory returns at chosen points — without depending on the device
// actually filling up. All three selectors compose (an allocation fails if
// any of them says so), and the schedule is a pure function of the plan and
// the allocation index, so a given program observes the same failures on
// every run.
type FaultPlan struct {
	// FailAllocs lists 0-based Malloc indices (counting every Alloc call,
	// including injected failures) that fail with ErrOutOfMemory.
	FailAllocs []uint64
	// FailEvery fails every Nth allocation (indices N-1, 2N-1, ...).
	// Zero disables the selector.
	FailEvery uint64
	// FailRate is the probability in [0, 1] that any given allocation
	// fails, drawn from a hash of Seed and the allocation index —
	// deterministic per index regardless of how many allocations precede
	// it. Zero disables the selector.
	FailRate float64
	// Seed selects the pseudo-random failure pattern used with FailRate.
	Seed uint64
}

// Enabled reports whether the plan can ever inject a failure.
func (p FaultPlan) Enabled() bool {
	return len(p.FailAllocs) > 0 || p.FailEvery > 0 || p.FailRate > 0
}

// splitmix64 is the SplitMix64 finalizer: a bijective 64-bit mixer with
// full avalanche, used to derive an independent uniform value per
// (seed, allocation index) pair without any sequential RNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// shouldFail reports whether the plan fails the allocation with the given
// 0-based index.
func (p FaultPlan) shouldFail(index uint64) bool {
	for _, i := range p.FailAllocs {
		if i == index {
			return true
		}
	}
	if p.FailEvery > 0 && (index+1)%p.FailEvery == 0 {
		return true
	}
	if p.FailRate > 0 {
		// Map the hash to [0, 1) with 53 bits of precision (the float64
		// mantissa), the same construction math/rand uses.
		u := float64(splitmix64(p.Seed^index)>>11) / (1 << 53)
		if u < p.FailRate {
			return true
		}
	}
	return false
}

// SetFaultPlan installs a deterministic failure schedule consulted by every
// subsequent Alloc. A zero plan disables injection.
func (a *Allocator) SetFaultPlan(p FaultPlan) { a.faultPlan = p }

// InjectFaults installs a deterministic allocator failure schedule on the
// device (see FaultPlan). Scheduled Malloc calls fail with an error
// wrapping ErrOutOfMemory before touching the allocator, exactly as a full
// device would report cudaErrorMemoryAllocation.
func (d *Device) InjectFaults(p FaultPlan) { d.alloc.SetFaultPlan(p) }

// injectedFault builds the error for a scheduled failure. It wraps
// ErrOutOfMemory so callers' errors.Is checks treat injected and genuine
// exhaustion identically, while the message keeps the injection visible in
// logs.
func injectedFault(index uint64) error {
	return fmt.Errorf("%w (injected fault at alloc #%d)", ErrOutOfMemory, index)
}
