package gpu

import (
	"encoding/binary"
	"math"
	"sort"

	"drgpum/internal/costmodel"
)

// Kernel is simulated device code. Run is invoked once per launch and must
// perform all of the kernel's memory traffic through the ExecContext so the
// instrumentation layer can observe it.
type Kernel interface {
	// Name identifies the kernel in traces and reports (the mangled-symbol
	// analog).
	Name() string
	// Run executes the kernel body.
	Run(ctx *ExecContext)
}

// KernelFunc adapts a function to the Kernel interface.
type KernelFunc struct {
	// KernelName is the reported kernel name.
	KernelName string
	// Body is the kernel body.
	Body func(ctx *ExecContext)
}

// Name returns the kernel name.
func (k KernelFunc) Name() string { return k.KernelName }

// Run invokes the body.
func (k KernelFunc) Run(ctx *ExecContext) { k.Body(ctx) }

// hitEntry is one row of the device-resident object table of paper Figure 5:
// an address range plus read/write hit flags.
type hitEntry struct {
	rng      Range
	readHit  bool
	writeHit bool
}

// ExecContext is the device-side execution environment handed to a kernel.
// All loads and stores must go through it; it performs bounds resolution,
// charges the cost model, maintains hit flags (object-level analysis) and
// streams access records (intra-object analysis).
type ExecContext struct {
	dev *Device
	rec *APIRecord

	grid  Dim3
	block Dim3

	// snapshot of the memory map at launch time, sorted by address.
	table []hitEntry
	// addrIndex maps a block base address to its table row, so the common
	// case (repeated access to the same object) avoids re-searching.
	lastEntry int

	instrumented bool
	hostTrace    bool // ObjectIDHostTrace mode: ship every access to the host

	// cost, when non-nil, runs the memory-hierarchy cost model over this
	// launch's accesses, keyed by hit-table entry (see Device.SetCostModel).
	cost *costmodel.Tracker

	shared []byte

	accessCycles  uint64
	computeCycles uint64
}

// Grid returns the launch grid dimensions.
func (c *ExecContext) Grid() Dim3 { return c.grid }

// Block returns the launch block dimensions.
func (c *ExecContext) Block() Dim3 { return c.block }

// Threads returns the total number of threads in the launch.
func (c *ExecContext) Threads() int { return c.grid.Count() * c.block.Count() }

// Compute charges pure-ALU work to the kernel's simulated duration. Kernels
// use it to model the non-memory part of their cost so that memory
// optimizations produce realistic (not unbounded) speedups.
func (c *ExecContext) Compute(cycles uint64) { c.computeCycles += cycles }

// ComputeF32 charges n single-precision operations at the device's FP32
// rate.
func (c *ExecContext) ComputeF32(n uint64) { c.computeCycles += n * c.dev.spec.FP32Cycles }

// ComputeF64 charges n double-precision operations at the device's FP64
// rate.
func (c *ExecContext) ComputeF64(n uint64) { c.computeCycles += n * c.dev.spec.FP64Cycles }

// SharedAlloc reserves n bytes of per-launch shared memory and returns its
// base offset. Shared memory is zero-initialized and discarded at kernel end.
func (c *ExecContext) SharedAlloc(n int) int {
	off := len(c.shared)
	c.shared = append(c.shared, make([]byte, n)...)
	return off
}

// findEntry locates the hit-table row containing addr, mimicking the binary
// search the paper performs on the device (Figure 5). Returns -1 if the
// address is not inside any live object.
func (c *ExecContext) findEntry(addr DevicePtr) int {
	// Fast path: same object as the previous access.
	if c.lastEntry >= 0 && c.lastEntry < len(c.table) && c.table[c.lastEntry].rng.Contains(addr) {
		return c.lastEntry
	}
	i := sort.Search(len(c.table), func(i int) bool { return c.table[i].rng.Addr > addr })
	if i == 0 {
		return -1
	}
	if c.table[i-1].rng.Contains(addr) {
		c.lastEntry = i - 1
		return i - 1
	}
	return -1
}

// access performs bookkeeping common to every load/store and returns the
// backing slice for the accessed bytes (nil on an out-of-bounds access).
func (c *ExecContext) access(addr DevicePtr, size uint32, kind AccessKind) []byte {
	return c.accessVal(addr, size, kind, 0, false)
}

// accessVal is access with an optional store value attached to the emitted
// record, so value-aware tools (the ValueExpert baseline) can observe the
// data stream without a second instrumentation pass.
func (c *ExecContext) accessVal(addr DevicePtr, size uint32, kind AccessKind, val uint64, hasVal bool) []byte {
	c.accessCycles += c.dev.spec.GlobalLatency
	b := c.dev.alloc.lookup(addr)
	var data []byte
	if b == nil || uint64(addr-b.addr)+uint64(size) > b.req {
		c.rec.Faults = append(c.rec.Faults, Fault{Addr: addr, Size: size, Kind: kind})
	} else {
		off := addr - b.addr
		data = b.data[off : uint64(off)+uint64(size)]
	}

	if c.dev.patch == PatchNone {
		return data
	}
	if c.hostTrace || c.instrumented {
		c.dev.pushAccess(c.rec, MemAccess{Addr: addr, Size: size, Kind: kind, Space: SpaceGlobal, Value: val, HasValue: hasVal})
	}
	if !c.hostTrace {
		if i := c.findEntry(addr); i >= 0 {
			if kind == AccessRead {
				c.table[i].readHit = true
			} else {
				c.table[i].writeHit = true
			}
			if c.cost != nil {
				c.cost.Access(i, uint64(addr), size)
			}
		}
	}
	return data
}

// sharedAccess charges and (at PatchFull) records a shared-memory access.
func (c *ExecContext) sharedAccess(off int, size uint32, kind AccessKind) {
	c.accessCycles += c.dev.spec.SharedLatency
	if c.instrumented {
		c.dev.pushAccess(c.rec, MemAccess{Addr: DevicePtr(off), Size: size, Kind: kind, Space: SpaceShared})
	}
}

// Read copies len(buf) bytes from device memory into buf. Out-of-bounds
// reads yield zeros and record a fault.
func (c *ExecContext) Read(addr DevicePtr, buf []byte) {
	data := c.access(addr, uint32(len(buf)), AccessRead)
	if data != nil {
		copy(buf, data)
	} else {
		for i := range buf {
			buf[i] = 0
		}
	}
}

// Write copies buf into device memory. Out-of-bounds writes are dropped and
// record a fault.
func (c *ExecContext) Write(addr DevicePtr, buf []byte) {
	data := c.access(addr, uint32(len(buf)), AccessWrite)
	if data != nil {
		copy(data, buf)
	}
}

// LoadF64 loads a float64 from device memory.
func (c *ExecContext) LoadF64(addr DevicePtr) float64 {
	data := c.access(addr, 8, AccessRead)
	if data == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(data))
}

// StoreF64 stores a float64 to device memory.
func (c *ExecContext) StoreF64(addr DevicePtr, v float64) {
	data := c.accessVal(addr, 8, AccessWrite, math.Float64bits(v), true)
	if data != nil {
		binary.LittleEndian.PutUint64(data, math.Float64bits(v))
	}
}

// LoadF32 loads a float32 from device memory.
func (c *ExecContext) LoadF32(addr DevicePtr) float32 {
	data := c.access(addr, 4, AccessRead)
	if data == nil {
		return 0
	}
	return math.Float32frombits(binary.LittleEndian.Uint32(data))
}

// StoreF32 stores a float32 to device memory.
func (c *ExecContext) StoreF32(addr DevicePtr, v float32) {
	data := c.accessVal(addr, 4, AccessWrite, uint64(math.Float32bits(v)), true)
	if data != nil {
		binary.LittleEndian.PutUint32(data, math.Float32bits(v))
	}
}

// LoadU32 loads a uint32 from device memory.
func (c *ExecContext) LoadU32(addr DevicePtr) uint32 {
	data := c.access(addr, 4, AccessRead)
	if data == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(data)
}

// StoreU32 stores a uint32 to device memory.
func (c *ExecContext) StoreU32(addr DevicePtr, v uint32) {
	data := c.accessVal(addr, 4, AccessWrite, uint64(v), true)
	if data != nil {
		binary.LittleEndian.PutUint32(data, v)
	}
}

// LoadU8 loads one byte from device memory.
func (c *ExecContext) LoadU8(addr DevicePtr) byte {
	data := c.access(addr, 1, AccessRead)
	if data == nil {
		return 0
	}
	return data[0]
}

// StoreU8 stores one byte to device memory.
func (c *ExecContext) StoreU8(addr DevicePtr, v byte) {
	data := c.accessVal(addr, 1, AccessWrite, uint64(v), true)
	if data != nil {
		data[0] = v
	}
}

// SharedLoadF64 loads a float64 from shared memory at byte offset off.
func (c *ExecContext) SharedLoadF64(off int) float64 {
	c.sharedAccess(off, 8, AccessRead)
	return math.Float64frombits(binary.LittleEndian.Uint64(c.shared[off:]))
}

// SharedStoreF64 stores a float64 to shared memory at byte offset off.
func (c *ExecContext) SharedStoreF64(off int, v float64) {
	c.sharedAccess(off, 8, AccessWrite)
	binary.LittleEndian.PutUint64(c.shared[off:], math.Float64bits(v))
}

// SharedLoadF32 loads a float32 from shared memory at byte offset off.
func (c *ExecContext) SharedLoadF32(off int) float32 {
	c.sharedAccess(off, 4, AccessRead)
	return math.Float32frombits(binary.LittleEndian.Uint32(c.shared[off:]))
}

// SharedStoreF32 stores a float32 to shared memory at byte offset off.
func (c *ExecContext) SharedStoreF32(off int, v float32) {
	c.sharedAccess(off, 4, AccessWrite)
	binary.LittleEndian.PutUint32(c.shared[off:], math.Float32bits(v))
}

// pushAccess appends an access to the simulated device-side buffer, flushing
// to hooks when it fills (paper §5.5: records are copied to the CPU when the
// buffer is full).
func (d *Device) pushAccess(rec *APIRecord, a MemAccess) {
	d.batch = append(d.batch, a)
	if len(d.batch) == cap(d.batch) {
		d.flushAccesses(rec)
	}
}

// flushAccesses delivers the buffered accesses to hooks and resets the
// buffer. With a pipeline active the filled batch is handed to the consumer
// goroutine and the device keeps simulating into a recycled buffer.
func (d *Device) flushAccesses(rec *APIRecord) {
	if len(d.batch) == 0 {
		return
	}
	if p := d.pipe; p != nil {
		d.batch = p.send(rec, d.batch)
		return
	}
	for _, h := range d.hooks {
		h.OnAccessBatch(rec, d.batch)
	}
	d.batch = d.batch[:0]
}

// Launch runs a kernel on the given stream (nil means the default stream).
// The launch is "asynchronous" in the simulated-clock sense: it only advances
// its own stream's clock. The kernel body executes immediately on the calling
// goroutine, which keeps the simulator deterministic.
func (d *Device) Launch(stream *Stream, k Kernel, grid, block Dim3) error {
	if stream == nil {
		stream = d.defaultStream
	}
	rec := d.newRecord(APIKernel, k.Name(), stream.id)
	rec.Grid, rec.Block = grid, block

	launchNo := d.kernelLaunch[k.Name()]
	d.kernelLaunch[k.Name()] = launchNo + 1

	ctx := &ExecContext{
		dev:       d,
		rec:       rec,
		grid:      grid,
		block:     block,
		lastEntry: -1,
	}
	if d.patch >= PatchAPI {
		if d.objectID == ObjectIDHostTrace {
			ctx.hostTrace = true
		} else {
			// "Copy M to the GPU at each kernel launch and associate each
			// entry with a hit flag" (paper Figure 5).
			var live []Range
			if d.liveRanges != nil {
				live = d.liveRanges()
			} else {
				live = d.alloc.Live()
			}
			ctx.table = make([]hitEntry, len(live))
			for i, r := range live {
				ctx.table[i] = hitEntry{rng: r}
			}
			if d.costOn && len(ctx.table) > 0 {
				ctx.cost = costmodel.NewTracker(d.costSpec, d.costL2, len(ctx.table))
			}
		}
		if d.patch == PatchFull {
			ctx.instrumented = d.instrument == nil || d.instrument(k.Name(), launchNo)
			rec.Instrumented = ctx.instrumented
		}
	}

	k.Run(ctx)
	d.flushAccesses(rec)
	if d.pipe != nil {
		// Drain before folding hit flags and emitting OnAPI: every
		// OnAccessBatch for this kernel must precede its OnAPI, and the
		// pipeline must be idle whenever application code runs between
		// APIs (see pipeline.go's ordering contract).
		d.pipe.drain()
	}

	if d.patch >= PatchAPI {
		if ctx.hostTrace {
			// In host-trace mode the hooks saw every access; Reads/Writes
			// stay empty here and the collector reconstructs object touches
			// itself (that reconstruction cost is the point of the mode).
		} else {
			for _, e := range ctx.table {
				if e.readHit {
					rec.Reads = append(rec.Reads, e.rng)
				}
				if e.writeHit {
					rec.Writes = append(rec.Writes, e.rng)
				}
			}
		}
	}

	if ctx.cost != nil {
		rec.Cost = ctx.cost.Finish(func(i int) uint64 { return uint64(ctx.table[i].rng.Addr) })
	}

	cost := d.spec.LaunchCycles + ctx.accessCycles + ctx.computeCycles
	rec.StartCycle, rec.EndCycle = d.streamOp(stream, cost)
	d.emit(rec)
	return nil
}

// LaunchFunc is a convenience wrapper launching a plain function as a kernel.
func (d *Device) LaunchFunc(stream *Stream, name string, grid, block Dim3, body func(ctx *ExecContext)) error {
	return d.Launch(stream, KernelFunc{KernelName: name, Body: body}, grid, block)
}
