package gpu

// Pipelined ingest: decouple simulation from access-stream consumption.
//
// By default the simulator is a single-threaded loop — the kernel fills the
// device-side access buffer, flushAccesses hands it to the hooks, and only
// then does the kernel produce the next batch. The paper's tool overlaps
// these on real hardware (the Sanitizer callback thread consumes while the
// GPU keeps executing); accessPipeline is that overlap for the simulator: a
// bounded single-producer/single-consumer hand-off where the device swaps a
// filled batch for a recycled empty one and keeps simulating while the
// consumer goroutine runs the hooks.
//
// Ordering contract (what keeps profiles byte-identical):
//
//   - Batches of one kernel are consumed in flush order — one queue, one
//     consumer, FIFO.
//   - Launch drains the pipeline before folding hit flags and emitting the
//     kernel's OnAPI record, so every OnAccessBatch for a kernel still
//     happens before that kernel's OnAPI, exactly as in synchronous mode.
//     Because every API that emits records drains first, the pipeline is
//     idle whenever application code (or OnAPI hooks) run — hook state may
//     be read and mutated between APIs without synchronization, which is
//     what lets the window manager seal/retire at its usual points.
//
// The consumer must honor the same re-entrancy contract as synchronous
// hooks: runPipeline executes hook bodies, so nothing reached from it may
// call Device or pool mutators (enforced by the hookreentry analyzer, which
// knows runPipeline/runShard by name).

// pipeDepth is the bound on batches queued between producer and consumer.
// Small on purpose: one batch in flight plus one queued is enough to hide
// consumption latency, and a tight bound keeps the working set (and the
// recycled-buffer pool) fixed.
const pipeDepth = 2

// pipeTask is one hand-off. A nil batch is the drain marker: the consumer
// acknowledges it on the drained channel instead of running hooks.
type pipeTask struct {
	rec   *APIRecord
	batch []MemAccess
}

// PipelineStats describes what the pipelined hand-off did during a run.
type PipelineStats struct {
	// Batches is the number of access batches handed to the consumer.
	Batches uint64
	// DepthHighWater is the maximum queue depth observed at hand-off time
	// (0..pipeDepth); pipeDepth sustained means the consumer is the
	// bottleneck.
	DepthHighWater int
}

// accessPipeline is the bounded SPSC channel between the kernel driver
// (producer, the application goroutine) and the hook consumer goroutine.
// The stats fields are producer-owned: written only at hand-off and read
// only from the producer goroutine (or after Stop joined the consumer).
type accessPipeline struct {
	hooks   []Hook
	tasks   chan pipeTask
	free    chan []MemAccess
	drained chan struct{}
	done    chan struct{}

	pending int // batches sent since the last drain (producer-owned)
	batches uint64
	depthHW int
}

// StartPipelinedIngest moves OnAccessBatch delivery onto a dedicated
// consumer goroutine. Must be called after all hooks are registered (the
// consumer snapshots the hook list) and before any kernel launches.
// Idempotent while a pipeline is active.
func (d *Device) StartPipelinedIngest() {
	if d.pipe != nil {
		return
	}
	p := &accessPipeline{
		hooks:   append([]Hook(nil), d.hooks...),
		tasks:   make(chan pipeTask, pipeDepth),
		free:    make(chan []MemAccess, pipeDepth+2),
		drained: make(chan struct{}),
		done:    make(chan struct{}),
	}
	// pipeDepth+1 spare buffers plus the device's own d.batch: enough that
	// a producer whose send succeeded always finds a free buffer without
	// blocking (queue holds at most pipeDepth, the consumer at most one).
	for i := 0; i < pipeDepth+1; i++ {
		p.free <- make([]MemAccess, 0, accessBatchSize)
	}
	d.pipe = p
	go p.runPipeline()
}

// StopPipelinedIngest drains outstanding batches, terminates the consumer
// goroutine and returns the device to synchronous hook delivery. The final
// hand-off statistics remain available through PipelineStats.
func (d *Device) StopPipelinedIngest() {
	p := d.pipe
	if p == nil {
		return
	}
	p.drain()
	close(p.tasks)
	<-p.done
	d.pipeStats = PipelineStats{Batches: p.batches, DepthHighWater: p.depthHW}
	d.pipe = nil
}

// PipelineStats returns hand-off statistics: live ones while a pipeline is
// active (producer goroutine only), or the totals captured at the last
// StopPipelinedIngest otherwise.
func (d *Device) PipelineStats() PipelineStats {
	if p := d.pipe; p != nil {
		return PipelineStats{Batches: p.batches, DepthHighWater: p.depthHW}
	}
	return d.pipeStats
}

// send hands a filled batch to the consumer and returns a recycled empty
// buffer for the device to keep simulating into.
func (p *accessPipeline) send(rec *APIRecord, batch []MemAccess) []MemAccess {
	if n := len(p.tasks); n > p.depthHW {
		p.depthHW = n
	}
	p.batches++
	p.pending++
	p.tasks <- pipeTask{rec: rec, batch: batch}
	return <-p.free
}

// drain blocks until the consumer has processed every batch handed off so
// far. The ack round-trip is the happens-before edge that lets the
// application goroutine read and mutate hook state between APIs.
func (p *accessPipeline) drain() {
	if p.pending == 0 {
		return
	}
	p.tasks <- pipeTask{}
	<-p.drained
	p.pending = 0
}

// runPipeline is the consumer loop. It executes hook bodies asynchronously,
// so the hookreentry contract applies to everything reachable from here:
// no Device or pool mutators (the analyzer matches this method by name).
func (p *accessPipeline) runPipeline() {
	for t := range p.tasks {
		if t.batch == nil {
			p.drained <- struct{}{}
			continue
		}
		for _, h := range p.hooks {
			h.OnAccessBatch(t.rec, t.batch)
		}
		p.free <- t.batch[:0]
	}
	close(p.done)
}
