package gpu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTypedLoadStoreRoundtrip(t *testing.T) {
	dev := NewDevice(SpecTest())
	p, _ := dev.Malloc(64)
	_ = dev.LaunchFunc(nil, "rt", Dim1(1), Dim1(1), func(ctx *ExecContext) {
		ctx.StoreF64(p, 3.14159)
		ctx.StoreF32(p+8, -2.5)
		ctx.StoreU32(p+12, 0xdeadbeef)
		ctx.StoreU8(p+16, 0x7f)

		if got := ctx.LoadF64(p); got != 3.14159 {
			t.Errorf("LoadF64 = %v", got)
		}
		if got := ctx.LoadF32(p + 8); got != -2.5 {
			t.Errorf("LoadF32 = %v", got)
		}
		if got := ctx.LoadU32(p + 12); got != 0xdeadbeef {
			t.Errorf("LoadU32 = %#x", got)
		}
		if got := ctx.LoadU8(p + 16); got != 0x7f {
			t.Errorf("LoadU8 = %#x", got)
		}
	})
}

func TestKernelDataVisibleToHost(t *testing.T) {
	dev := NewDevice(SpecTest())
	p, _ := dev.Malloc(8)
	_ = dev.LaunchFunc(nil, "w", Dim1(1), Dim1(1), func(ctx *ExecContext) {
		ctx.StoreF64(p, 42.5)
	})
	out := make([]byte, 8)
	if err := dev.MemcpyDtoH(out, p, nil); err != nil {
		t.Fatal(err)
	}
	bits := uint64(out[0]) | uint64(out[1])<<8 | uint64(out[2])<<16 | uint64(out[3])<<24 |
		uint64(out[4])<<32 | uint64(out[5])<<40 | uint64(out[6])<<48 | uint64(out[7])<<56
	if math.Float64frombits(bits) != 42.5 {
		t.Errorf("host sees %v", math.Float64frombits(bits))
	}
}

func TestOOBLoadsReturnZero(t *testing.T) {
	dev := NewDevice(SpecTest())
	p, _ := dev.Malloc(8)
	_ = dev.LaunchFunc(nil, "oob", Dim1(1), Dim1(1), func(ctx *ExecContext) {
		if got := ctx.LoadF64(p + 4096); got != 0 {
			t.Errorf("OOB load = %v, want 0", got)
		}
		buf := []byte{1, 2, 3, 4}
		ctx.Read(p+4096, buf)
		for _, b := range buf {
			if b != 0 {
				t.Errorf("OOB Read left %v", buf)
				break
			}
		}
	})
}

func TestSharedMemory(t *testing.T) {
	dev := NewDevice(SpecTest())
	p, _ := dev.Malloc(8)
	_ = dev.LaunchFunc(nil, "sh", Dim1(1), Dim1(32), func(ctx *ExecContext) {
		off := ctx.SharedAlloc(64)
		ctx.SharedStoreF32(off+4, 9.5)
		ctx.SharedStoreF64(off+8, -1.25)
		if got := ctx.SharedLoadF32(off + 4); got != 9.5 {
			t.Errorf("SharedLoadF32 = %v", got)
		}
		if got := ctx.SharedLoadF64(off + 8); got != -1.25 {
			t.Errorf("SharedLoadF64 = %v", got)
		}
		// Fresh shared allocations are zeroed.
		if got := ctx.SharedLoadF32(off); got != 0 {
			t.Errorf("fresh shared memory = %v", got)
		}
		ctx.StoreF64(p, ctx.SharedLoadF64(off+8))
	})
}

func TestHitFlagsProduceObjectReadWriteSets(t *testing.T) {
	dev := NewDevice(SpecTest())
	h := &recordingHook{}
	dev.AddHook(h)
	dev.SetPatchLevel(PatchAPI)

	a, _ := dev.Malloc(256)
	b, _ := dev.Malloc(256)
	c, _ := dev.Malloc(256) // untouched

	_ = dev.LaunchFunc(nil, "rw", Dim1(1), Dim1(1), func(ctx *ExecContext) {
		_ = ctx.LoadU32(a)       // read a
		ctx.StoreU32(b+128, 1)   // write b
		_ = ctx.LoadU32(b + 200) // and read b
	})

	kerl := h.byKind(APIKernel)[0]
	if len(kerl.Reads) != 2 {
		t.Fatalf("reads = %v, want ranges of a and b", kerl.Reads)
	}
	if kerl.Reads[0].Addr != a || kerl.Reads[1].Addr != b {
		t.Errorf("read set = %v", kerl.Reads)
	}
	if len(kerl.Writes) != 1 || kerl.Writes[0].Addr != b {
		t.Errorf("write set = %v", kerl.Writes)
	}
	for _, r := range append(kerl.Reads, kerl.Writes...) {
		if r.Addr == c {
			t.Error("untouched object appeared in the access sets")
		}
	}
}

func TestInstrumentFilterAndSampling(t *testing.T) {
	dev := NewDevice(SpecTest())
	h := &recordingHook{}
	dev.AddHook(h)
	dev.SetPatchLevel(PatchFull)
	// Instrument only "wanted", every 2nd launch.
	dev.SetInstrumentFilter(func(kernel string, launch uint64) bool {
		return kernel == "wanted" && launch%2 == 0
	})

	p, _ := dev.Malloc(64)
	body := func(ctx *ExecContext) { ctx.StoreU32(p, 1) }
	_ = dev.LaunchFunc(nil, "wanted", Dim1(1), Dim1(1), body) // launch 0: instrumented
	_ = dev.LaunchFunc(nil, "wanted", Dim1(1), Dim1(1), body) // launch 1: sampled out
	_ = dev.LaunchFunc(nil, "other", Dim1(1), Dim1(1), body)  // not whitelisted
	_ = dev.LaunchFunc(nil, "wanted", Dim1(1), Dim1(1), body) // launch 2: instrumented

	var instrumented int
	for _, rec := range h.byKind(APIKernel) {
		if rec.Instrumented {
			instrumented++
		}
	}
	if instrumented != 2 {
		t.Errorf("instrumented %d launches, want 2", instrumented)
	}
	if len(h.batches) != 2 {
		t.Errorf("got %d access batches, want 2", len(h.batches))
	}
	// Hit-flag object identification still works for sampled-out kernels.
	for _, rec := range h.byKind(APIKernel) {
		if len(rec.Writes) != 1 {
			t.Errorf("kernel %q launch: write set %v (object identification must not be sampled)", rec.Name, rec.Writes)
		}
	}
}

func TestAccessBatchValuesAndSpaces(t *testing.T) {
	dev := NewDevice(SpecTest())
	h := &recordingHook{}
	dev.AddHook(h)
	dev.SetPatchLevel(PatchFull)

	p, _ := dev.Malloc(64)
	_ = dev.LaunchFunc(nil, "v", Dim1(1), Dim1(1), func(ctx *ExecContext) {
		ctx.StoreU32(p, 77)
		_ = ctx.LoadU32(p)
		off := ctx.SharedAlloc(8)
		ctx.SharedStoreF64(off, 1)
	})

	if len(h.batches) != 1 {
		t.Fatalf("batches = %d", len(h.batches))
	}
	accs := h.batches[0]
	if len(accs) != 3 {
		t.Fatalf("got %d accesses, want 3", len(accs))
	}
	if accs[0].Kind != AccessWrite || !accs[0].HasValue || accs[0].Value != 77 {
		t.Errorf("store access = %+v (typed stores carry their value)", accs[0])
	}
	if accs[1].Kind != AccessRead || accs[1].HasValue {
		t.Errorf("load access = %+v", accs[1])
	}
	if accs[2].Space != SpaceShared {
		t.Errorf("shared access space = %v", accs[2].Space)
	}
}

func TestAccessBatchFlushOnOverflow(t *testing.T) {
	dev := NewDevice(SpecTest())
	h := &recordingHook{}
	dev.AddHook(h)
	dev.SetPatchLevel(PatchFull)

	p, _ := dev.Malloc(8)
	n := accessBatchSize + 10
	_ = dev.LaunchFunc(nil, "many", Dim1(1), Dim1(1), func(ctx *ExecContext) {
		for i := 0; i < n; i++ {
			ctx.StoreU32(p, uint32(i))
		}
	})
	total := 0
	for _, b := range h.batches {
		total += len(b)
	}
	if total != n {
		t.Errorf("delivered %d accesses, want %d", total, n)
	}
	if len(h.batches) < 2 {
		t.Errorf("buffer overflow should force a mid-kernel flush; got %d batches", len(h.batches))
	}
}

func TestCostModelSharedVsGlobal(t *testing.T) {
	spec := SpecTest()
	run := func(shared bool) uint64 {
		dev := NewDevice(spec)
		p, _ := dev.Malloc(4096)
		_ = dev.LaunchFunc(nil, "k", Dim1(1), Dim1(1), func(ctx *ExecContext) {
			if shared {
				off := ctx.SharedAlloc(4096)
				for i := 0; i < 1000; i++ {
					ctx.SharedStoreF32(off, 1)
				}
			} else {
				for i := 0; i < 1000; i++ {
					ctx.StoreF32(p, 1)
				}
			}
		})
		return dev.Elapsed()
	}
	g, s := run(false), run(true)
	if s >= g {
		t.Errorf("shared-memory kernel (%d cycles) not faster than global (%d)", s, g)
	}
	// The gap must reflect the latency ratio.
	wantDelta := 1000 * (spec.GlobalLatency - spec.SharedLatency)
	if g-s != wantDelta {
		t.Errorf("cycle delta = %d, want %d", g-s, wantDelta)
	}
}

func TestCostModelPrecision(t *testing.T) {
	dev := NewDevice(SpecRTX3090())
	base := dev.Elapsed()
	_ = dev.LaunchFunc(nil, "fp", Dim1(1), Dim1(1), func(ctx *ExecContext) {
		ctx.ComputeF32(100)
		ctx.ComputeF64(100)
	})
	spec := dev.Spec()
	want := spec.LaunchCycles + 100*spec.FP32Cycles + 100*spec.FP64Cycles
	if got := dev.Elapsed() - base; got != want {
		t.Errorf("FP cost = %d cycles, want %d", got, want)
	}
}

func TestRangeHelpers(t *testing.T) {
	r := Range{Addr: 100, Size: 50}
	if !r.Contains(100) || !r.Contains(149) || r.Contains(150) || r.Contains(99) {
		t.Error("Contains boundary behaviour wrong")
	}
	if !r.Overlaps(Range{Addr: 149, Size: 10}) || r.Overlaps(Range{Addr: 150, Size: 10}) {
		t.Error("Overlaps boundary behaviour wrong")
	}

	// Property: Overlaps is symmetric and consistent with Contains.
	f := func(a1, s1, a2, s2 uint16) bool {
		ra := Range{Addr: DevicePtr(a1), Size: uint64(s1%512) + 1}
		rb := Range{Addr: DevicePtr(a2), Size: uint64(s2%512) + 1}
		if ra.Overlaps(rb) != rb.Overlaps(ra) {
			return false
		}
		// If rb's start is inside ra, they overlap.
		if ra.Contains(rb.Addr) && !ra.Overlaps(rb) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDim3Count(t *testing.T) {
	if got := (Dim3{X: 2, Y: 3, Z: 4}).Count(); got != 24 {
		t.Errorf("Count = %d", got)
	}
	if got := (Dim3{}).Count(); got != 1 {
		t.Errorf("zero Dim3 Count = %d, want 1", got)
	}
	if got := Dim1(7).Count(); got != 7 {
		t.Errorf("Dim1(7).Count = %d", got)
	}
}
