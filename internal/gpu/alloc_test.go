package gpu

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocatorBasic(t *testing.T) {
	a := NewAllocator(1<<20, 256)

	p1, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != allocBase {
		t.Errorf("first allocation at 0x%x, want 0x%x", uint64(p1), uint64(allocBase))
	}
	p2, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p1+256 {
		t.Errorf("second allocation at 0x%x, want aligned 0x%x", uint64(p2), uint64(p1+256))
	}

	st := a.Stats()
	if st.InUse != 512 {
		t.Errorf("InUse = %d, want 512 (two aligned 100-byte blocks)", st.InUse)
	}
	if st.Peak != 512 || st.LiveAllocations != 2 || st.TotalAllocations != 2 {
		t.Errorf("stats = %+v", st)
	}

	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	st = a.Stats()
	if st.InUse != 256 || st.Peak != 512 {
		t.Errorf("after free: InUse=%d Peak=%d, want 256/512", st.InUse, st.Peak)
	}
}

func TestAllocatorAlignment(t *testing.T) {
	a := NewAllocator(1<<20, 512)
	p, err := a.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(p)%512 != 0 {
		t.Errorf("allocation 0x%x not 512-aligned", uint64(p))
	}
	if a.Stats().InUse != 512 {
		t.Errorf("1-byte request should reserve one 512-byte unit, got %d", a.Stats().InUse)
	}
}

func TestAllocatorZeroSize(t *testing.T) {
	a := NewAllocator(1<<20, 256)
	p1, err := a.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Error("zero-size allocations must get distinct addresses (cudaMalloc semantics)")
	}
}

func TestAllocatorOOM(t *testing.T) {
	a := NewAllocator(1024, 256)
	if _, err := a.Alloc(2048); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("oversized alloc: err = %v, want ErrOutOfMemory", err)
	}
	p, err := a.Alloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("alloc on full device: err = %v, want ErrOutOfMemory", err)
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1024); err != nil {
		t.Errorf("alloc after freeing everything: %v", err)
	}
}

func TestAllocatorInvalidFree(t *testing.T) {
	a := NewAllocator(1<<20, 256)
	if err := a.Free(allocBase); !errors.Is(err, ErrInvalidFree) {
		t.Errorf("free of never-allocated address: %v, want ErrInvalidFree", err)
	}
	p, _ := a.Alloc(64)
	if err := a.Free(p + 8); !errors.Is(err, ErrInvalidFree) {
		t.Errorf("free of interior pointer: %v, want ErrInvalidFree", err)
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); !errors.Is(err, ErrInvalidFree) {
		t.Errorf("double free: %v, want ErrInvalidFree", err)
	}
}

func TestAllocatorCoalescing(t *testing.T) {
	a := NewAllocator(1<<20, 256)
	var ptrs []DevicePtr
	for i := 0; i < 4; i++ {
		p, err := a.Alloc(256)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	// Free out of order; the spans must coalesce back into one hole plus
	// the big tail.
	for _, i := range []int{1, 3, 0, 2} {
		if err := a.Free(ptrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	st := a.Stats()
	if st.FreeSpans != 1 {
		t.Errorf("after freeing all in shuffled order: %d free spans, want 1 (coalesced)", st.FreeSpans)
	}
	if st.LargestFreeSpan != 1<<20 {
		t.Errorf("largest span = %d, want full capacity", st.LargestFreeSpan)
	}
}

func TestAllocatorFirstFitReuse(t *testing.T) {
	a := NewAllocator(1<<20, 256)
	p1, _ := a.Alloc(1024)
	p2, _ := a.Alloc(1024)
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	p3, err := a.Alloc(512)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 {
		t.Errorf("first-fit should reuse the first hole: got 0x%x, want 0x%x", uint64(p3), uint64(p1))
	}
	_ = p2
}

func TestAllocatorLiveRanges(t *testing.T) {
	a := NewAllocator(1<<20, 256)
	p1, _ := a.Alloc(100)
	p2, _ := a.Alloc(300)
	live := a.Live()
	if len(live) != 2 {
		t.Fatalf("live = %v, want 2 ranges", live)
	}
	if live[0].Addr != p1 || live[0].Size != 100 {
		t.Errorf("live[0] = %v, want base %x size 100 (requested, not aligned)", live[0], uint64(p1))
	}
	if live[1].Addr != p2 || live[1].Size != 300 {
		t.Errorf("live[1] = %v", live[1])
	}
}

func TestAllocatorResetPeak(t *testing.T) {
	a := NewAllocator(1<<20, 256)
	p, _ := a.Alloc(4096)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	a.ResetPeak()
	if got := a.Stats().Peak; got != 0 {
		t.Errorf("peak after ResetPeak with nothing live = %d, want 0", got)
	}
}

// TestAllocatorPropertyNoOverlap drives random alloc/free sequences and
// checks the structural invariants: live blocks never overlap, accounting
// matches a reference model, and freed memory is reusable.
func TestAllocatorPropertyNoOverlap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewAllocator(1<<18, 256)
		type liveBlock struct {
			ptr  DevicePtr
			size uint64
		}
		var live []liveBlock
		var modelInUse uint64

		for op := 0; op < 200; op++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				size := uint64(rng.Intn(4096) + 1)
				aligned := (size + 255) &^ 255
				p, err := a.Alloc(size)
				if err != nil {
					if modelInUse+aligned <= 1<<18 && a.Stats().LargestFreeSpan >= aligned {
						t.Errorf("seed %d: alloc(%d) failed with room available: %v", seed, size, err)
						return false
					}
					continue
				}
				live = append(live, liveBlock{ptr: p, size: size})
				modelInUse += aligned
			} else {
				i := rng.Intn(len(live))
				if err := a.Free(live[i].ptr); err != nil {
					t.Errorf("seed %d: free failed: %v", seed, err)
					return false
				}
				modelInUse -= (live[i].size + 255) &^ 255
				if live[i].size == 0 {
					modelInUse -= 256 - 256 // zero-size rounds to one unit; handled below
				}
				live = append(live[:i], live[i+1:]...)
			}

			// Invariant: no two live ranges overlap and ordering is sorted.
			ranges := a.Live()
			for j := 1; j < len(ranges); j++ {
				if ranges[j-1].Overlaps(ranges[j]) {
					t.Errorf("seed %d: overlapping live ranges %v and %v", seed, ranges[j-1], ranges[j])
					return false
				}
				if ranges[j-1].Addr >= ranges[j].Addr {
					t.Errorf("seed %d: live ranges out of order", seed)
					return false
				}
			}
			if got := a.Stats().LiveAllocations; got != len(live) {
				t.Errorf("seed %d: live count %d, want %d", seed, got, len(live))
				return false
			}
			if got := a.Stats().InUse; got != modelInUse {
				t.Errorf("seed %d: InUse %d, model %d", seed, got, modelInUse)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
