package gpu

import (
	"errors"
	"fmt"

	"drgpum/internal/costmodel"
)

// ErrBadCopy is returned when a memory copy or set touches addresses outside
// a live allocation.
var ErrBadCopy = errors.New("gpu: copy/set out of bounds")

// Fault records an out-of-bounds kernel access. Faults do not abort the
// simulated kernel (matching how silent corruption behaves on real devices
// without compute-sanitizer); they are surfaced on the APIRecord so
// memcheck-style tools can report them.
type Fault struct {
	Addr DevicePtr
	Size uint32
	Kind AccessKind
}

// APIRecord describes one completed GPU API invocation. It is the atom the
// profiler's collector consumes: the paper's object-level analysis is defined
// entirely over the ordered stream of these records.
type APIRecord struct {
	// Index is the global invocation index (0-based, order of invocation).
	Index uint64
	// Kind is the API class.
	Kind APIKind
	// Name is the kernel name for APIKernel, or the API name otherwise.
	Name string
	// Stream is the stream ID the API executed on. Host-synchronous APIs
	// (Malloc, Free and the synchronous copy/set forms) report stream 0.
	Stream int
	// SeqInStream is the per-(stream, kind) sequence number, used for the
	// paper's Figure 7 labels such as ALLOC(0, 2) or KERL(1, 0).
	SeqInStream int

	// Ptr/Size describe the target of Malloc, Free and Memset.
	Ptr  DevicePtr
	Size uint64
	// Dst/Src/CopyKind describe a Memcpy.
	Dst      DevicePtr
	Src      DevicePtr
	CopyKind MemcpyKind
	// Grid/Block are the launch dimensions of a kernel.
	Grid  Dim3
	Block Dim3

	// Reads and Writes are the device address ranges this API read and
	// wrote. For copies and sets they are exact (the Sanitizer API provides
	// these ranges directly, paper §5.5 footnote); for kernels they are at
	// data-object resolution, produced by the hit-flag scheme of Figure 5.
	Reads  []Range
	Writes []Range

	// Instrumented reports whether per-instruction accesses were recorded
	// for this kernel (PatchFull and not filtered out by sampling or
	// whitelist).
	Instrumented bool
	// Cost is the memory-hierarchy cost model's record for a kernel
	// launch (nil when the model is disabled, for non-kernel APIs, in
	// host-trace mode, or when the kernel touched no live object). Entry
	// bases are hit-table range addresses; the collector resolves them to
	// data objects.
	Cost *costmodel.KernelCost
	// Custom marks records synthesized by a custom memory API (e.g. a
	// caching-pool allocation, paper §5.4) rather than a raw device API.
	Custom bool
	// Faults lists out-of-bounds accesses observed during a kernel.
	Faults []Fault

	// StartCycle and EndCycle are simulated-clock bounds of the operation.
	StartCycle uint64
	EndCycle   uint64
}

// Hook observes device activity. Hooks are the simulator's analog of the
// NVIDIA Sanitizer API callback registration: OnAPI corresponds to API-level
// interception and OnAccessBatch to per-instruction patching.
type Hook interface {
	// OnAPI is invoked synchronously on the calling goroutine immediately
	// after a GPU API completes, so implementations may unwind the host call
	// path with runtime.Callers.
	OnAPI(rec *APIRecord)
	// OnAccessBatch delivers a batch of memory accesses executed by an
	// instrumented kernel. The slice is reused; implementations must copy
	// what they keep. rec is the in-progress kernel record (Index, Name and
	// launch fields are valid; Reads/Writes/EndCycle are not final yet).
	OnAccessBatch(rec *APIRecord, batch []MemAccess)
}

// ObjectIDMode selects how kernels identify which data objects they touch
// for object-level analysis (paper §5.5).
type ObjectIDMode uint8

const (
	// ObjectIDHitFlags is the paper's optimized scheme (Figure 5): a snapshot
	// of the memory map is "copied to the device" at each kernel launch, each
	// access flips a per-object hit flag via binary search, and only the
	// flags travel back to the host.
	ObjectIDHitFlags ObjectIDMode = iota
	// ObjectIDHostTrace is the naive baseline the paper measured at up to
	// 1170x overhead on Darknet: every access is shipped to the host, which
	// performs the object lookup there.
	ObjectIDHostTrace
)

// String names the mode.
func (m ObjectIDMode) String() string {
	if m == ObjectIDHostTrace {
		return "host-trace"
	}
	return "hit-flags"
}

// accessBatchSize is the simulated GPU-side buffer capacity, in records,
// before a flush to the host is forced.
const accessBatchSize = 4096

// Device is a simulated GPU. It is not safe for concurrent use; the
// simulator models stream concurrency with per-stream clocks rather than
// goroutines so that profiles are deterministic.
type Device struct {
	spec  DeviceSpec
	alloc *Allocator

	streams       []*Stream
	defaultStream *Stream

	hooks      []Hook
	patch      PatchLevel
	objectID   ObjectIDMode
	instrument func(kernel string, launch uint64) bool
	liveRanges func() []Range

	apiIndex     uint64
	seqCounters  map[seqKey]int
	kernelLaunch map[string]uint64 // per-kernel launch counts (for sampling)

	batch []MemAccess

	// pipe, when non-nil, routes flushed access batches to a consumer
	// goroutine instead of running hooks inline (see pipeline.go).
	pipe      *accessPipeline
	pipeStats PipelineStats

	// costSpec/costL2 carry the memory-hierarchy cost model when enabled:
	// per-launch trackers derive from costSpec and share the persistent
	// costL2. Both are only touched on the launching goroutine (kernel
	// bodies always execute inline), which keeps the model byte-identical
	// across the sequential/pipelined/streaming profiling modes.
	costOn   bool
	costSpec costmodel.Spec
	costL2   *costmodel.Cache
}

type seqKey struct {
	stream int
	kind   APIKind
}

// Stream is an in-order execution queue with its own simulated clock.
type Stream struct {
	id    int
	clock uint64
}

// ID returns the stream identifier (0 is the default stream).
func (s *Stream) ID() int { return s.id }

// NewDevice creates a device with the given spec.
func NewDevice(spec DeviceSpec) *Device {
	d := &Device{
		spec:         spec,
		alloc:        NewAllocator(spec.MemoryCapacity, spec.Alignment),
		seqCounters:  make(map[seqKey]int),
		kernelLaunch: make(map[string]uint64),
		batch:        make([]MemAccess, 0, accessBatchSize),
	}
	d.defaultStream = &Stream{id: 0}
	d.streams = []*Stream{d.defaultStream}
	return d
}

// Spec returns the device configuration.
func (d *Device) Spec() DeviceSpec { return d.spec }

// Allocator exposes the device allocator for statistics queries.
func (d *Device) Allocator() *Allocator { return d.alloc }

// MemStats returns the allocator accounting snapshot; the Peak field is what
// the paper's Table 4 "peak memory reduction" experiments compare.
func (d *Device) MemStats() AllocStats { return d.alloc.Stats() }

// CreateStream creates a new asynchronous stream.
func (d *Device) CreateStream() *Stream {
	s := &Stream{id: len(d.streams)}
	d.streams = append(d.streams, s)
	return s
}

// DefaultStream returns stream 0.
func (d *Device) DefaultStream() *Stream { return d.defaultStream }

// AddHook registers an observer. Hooks fire in registration order.
func (d *Device) AddHook(h Hook) { d.hooks = append(d.hooks, h) }

// SetPatchLevel selects the instrumentation level for subsequent operations.
func (d *Device) SetPatchLevel(p PatchLevel) { d.patch = p }

// PatchLevel returns the current instrumentation level.
func (d *Device) PatchLevel() PatchLevel { return d.patch }

// SetObjectIDMode selects the object identification scheme (paper §5.5).
func (d *Device) SetObjectIDMode(m ObjectIDMode) { d.objectID = m }

// SetInstrumentFilter installs a predicate deciding whether a particular
// kernel launch gets per-instruction instrumentation at PatchFull. launch is
// the 0-based launch count of that kernel name. A nil filter instruments
// every launch. Object-level analysis is unaffected: the paper monitors all
// GPU APIs without sampling (Figure 6 caption).
func (d *Device) SetInstrumentFilter(f func(kernel string, launch uint64) bool) {
	d.instrument = f
}

// SetCostModel enables the memory-hierarchy cost model (DESIGN.md §4.10)
// for subsequent kernel launches: per-warp coalescing over each launch's
// hit table, a per-launch L1 and a persistent L2, parameterized by spec.
// Kernel records gain a Cost field; the simulated clock is unchanged (the
// model is an analysis overlay, not a timing change). A zero-valued spec
// derives the defaults for this device via costmodel.SpecFor.
func (d *Device) SetCostModel(spec costmodel.Spec) {
	if spec.SectorBytes == 0 {
		spec = costmodel.SpecFor(d.spec.Name, d.spec.GlobalLatency, d.spec.CopyBytesPerCycle,
			d.spec.MallocCycles, d.spec.FreeCycles)
	}
	d.costOn = true
	d.costSpec = spec
	d.costL2 = costmodel.NewCache(spec.L2Sets, spec.L2Ways)
}

// DisableCostModel turns the cost model off for subsequent launches.
func (d *Device) DisableCostModel() {
	d.costOn = false
	d.costL2 = nil
}

// CostModelSpec returns the active cost-model parameters and whether the
// model is enabled.
func (d *Device) CostModelSpec() (costmodel.Spec, bool) { return d.costSpec, d.costOn }

// SetLiveRangesProvider overrides the source of the live-object table used
// by the kernel hit-flag scheme. By default the allocator's live blocks are
// used; a profiler integrating a custom memory pool substitutes its own
// memory map M so kernel accesses attribute to pool tensors rather than to
// the pool's backing segments (paper §5.4).
func (d *Device) SetLiveRangesProvider(f func() []Range) { d.liveRanges = f }

// CustomAlloc surfaces an allocation performed by a custom memory API (a
// pool tensor request). It emits an allocation-kind API record without
// touching the device allocator. The cost models the pool's fast path,
// which is the reason frameworks use pools instead of cudaMalloc.
func (d *Device) CustomAlloc(name string, ptr DevicePtr, size uint64) {
	rec := d.newRecord(APIMalloc, name, 0)
	rec.Ptr = ptr
	rec.Size = size
	rec.Custom = true
	rec.StartCycle, rec.EndCycle = d.hostSyncOp(d.spec.MallocCycles / 100)
	d.emit(rec)
}

// CustomFree surfaces a deallocation performed by a custom memory API.
func (d *Device) CustomFree(name string, ptr DevicePtr) {
	rec := d.newRecord(APIFree, name, 0)
	rec.Ptr = ptr
	rec.Custom = true
	rec.StartCycle, rec.EndCycle = d.hostSyncOp(d.spec.FreeCycles / 100)
	d.emit(rec)
}

// Elapsed returns the simulated time: the furthest-ahead stream clock.
func (d *Device) Elapsed() uint64 {
	var maxClock uint64
	for _, s := range d.streams {
		if s.clock > maxClock {
			maxClock = s.clock
		}
	}
	return maxClock
}

// Synchronize joins all streams: every stream clock advances to the maximum
// (the cudaDeviceSynchronize analog).
func (d *Device) Synchronize() {
	m := d.Elapsed()
	for _, s := range d.streams {
		s.clock = m
	}
}

// newRecord initializes a record for the next API invocation.
func (d *Device) newRecord(kind APIKind, name string, stream int) *APIRecord {
	k := seqKey{stream: stream, kind: kind}
	seq := d.seqCounters[k]
	d.seqCounters[k] = seq + 1
	rec := &APIRecord{
		Index:       d.apiIndex,
		Kind:        kind,
		Name:        name,
		Stream:      stream,
		SeqInStream: seq,
	}
	d.apiIndex++
	return rec
}

// emit finalizes a record and notifies hooks.
func (d *Device) emit(rec *APIRecord) {
	if d.patch == PatchNone {
		return
	}
	for _, h := range d.hooks {
		h.OnAPI(rec)
	}
}

// hostSyncOp times a device-wide synchronous operation of the given cost:
// it starts when all streams have drained and advances every stream past it
// (cudaMalloc/cudaFree/synchronous copies synchronize the device).
func (d *Device) hostSyncOp(cost uint64) (start, end uint64) {
	start = d.Elapsed()
	end = start + cost
	for _, s := range d.streams {
		s.clock = end
	}
	return start, end
}

// streamOp times an asynchronous operation on one stream.
func (d *Device) streamOp(s *Stream, cost uint64) (start, end uint64) {
	start = s.clock
	end = start + cost
	s.clock = end
	return start, end
}

// Peek copies device backing bytes into buf without emitting an API record
// or charging the cost model. It exists for subsystems that model accesses
// outside the GPU API surface — the unified-memory manager's host-side
// accesses — and for tests.
func (d *Device) Peek(ptr DevicePtr, buf []byte) error {
	b, off, err := d.resolveSpan(ptr, uint64(len(buf)))
	if err != nil {
		return err
	}
	copy(buf, b.data[off:off+uint64(len(buf))])
	return nil
}

// Poke writes buf into device backing bytes without emitting an API record
// or charging the cost model (see Peek).
func (d *Device) Poke(ptr DevicePtr, buf []byte) error {
	b, off, err := d.resolveSpan(ptr, uint64(len(buf)))
	if err != nil {
		return err
	}
	copy(b.data[off:off+uint64(len(buf))], buf)
	return nil
}

// Malloc allocates size bytes of device memory.
func (d *Device) Malloc(size uint64) (DevicePtr, error) {
	ptr, err := d.alloc.Alloc(size)
	if err != nil {
		return 0, err
	}
	rec := d.newRecord(APIMalloc, "cudaMalloc", 0)
	rec.Ptr = ptr
	rec.Size = size
	rec.StartCycle, rec.EndCycle = d.hostSyncOp(d.spec.MallocCycles)
	d.emit(rec)
	return ptr, nil
}

// Free releases device memory previously returned by Malloc.
func (d *Device) Free(ptr DevicePtr) error {
	if err := d.alloc.Free(ptr); err != nil {
		return err
	}
	rec := d.newRecord(APIFree, "cudaFree", 0)
	rec.Ptr = ptr
	rec.StartCycle, rec.EndCycle = d.hostSyncOp(d.spec.FreeCycles)
	d.emit(rec)
	return nil
}

// copyCost returns the simulated cycles for moving n bytes.
func (d *Device) copyCost(n uint64) uint64 {
	bw := d.spec.CopyBytesPerCycle
	if bw == 0 {
		bw = 1
	}
	c := n / bw
	if c == 0 {
		c = 1
	}
	return c
}

// resolveSpan validates that [ptr, ptr+n) lies inside one live allocation and
// returns the block plus the byte offset of ptr within it.
func (d *Device) resolveSpan(ptr DevicePtr, n uint64) (*block, uint64, error) {
	b := d.alloc.lookup(ptr)
	if b == nil {
		return nil, 0, fmt.Errorf("%w: 0x%x is not in a live allocation", ErrBadCopy, uint64(ptr))
	}
	off := uint64(ptr - b.addr)
	if off+n > b.req {
		return nil, 0, fmt.Errorf("%w: [0x%x, 0x%x) exceeds allocation %v",
			ErrBadCopy, uint64(ptr), uint64(ptr)+n, Range{Addr: b.addr, Size: b.req})
	}
	return b, off, nil
}

// MemcpyHtoD copies host data into device memory on the given stream
// (nil means the synchronous default-stream form).
func (d *Device) MemcpyHtoD(dst DevicePtr, src []byte, stream *Stream) error {
	n := uint64(len(src))
	b, off, err := d.resolveSpan(dst, n)
	if err != nil {
		return err
	}
	copy(b.data[off:off+n], src)
	rec := d.recordCopy(dst, 0, n, CopyHostToDevice, stream)
	rec.Writes = []Range{{Addr: dst, Size: n}}
	d.emit(rec)
	return nil
}

// MemcpyDtoH copies device memory back to the host buffer.
func (d *Device) MemcpyDtoH(dst []byte, src DevicePtr, stream *Stream) error {
	n := uint64(len(dst))
	b, off, err := d.resolveSpan(src, n)
	if err != nil {
		return err
	}
	copy(dst, b.data[off:off+n])
	rec := d.recordCopy(0, src, n, CopyDeviceToHost, stream)
	rec.Reads = []Range{{Addr: src, Size: n}}
	d.emit(rec)
	return nil
}

// MemcpyDtoD copies n bytes between device buffers.
func (d *Device) MemcpyDtoD(dst, src DevicePtr, n uint64, stream *Stream) error {
	sb, soff, err := d.resolveSpan(src, n)
	if err != nil {
		return err
	}
	db, doff, err := d.resolveSpan(dst, n)
	if err != nil {
		return err
	}
	copy(db.data[doff:doff+n], sb.data[soff:soff+n])
	rec := d.recordCopy(dst, src, n, CopyDeviceToDevice, stream)
	rec.Reads = []Range{{Addr: src, Size: n}}
	rec.Writes = []Range{{Addr: dst, Size: n}}
	d.emit(rec)
	return nil
}

// recordCopy builds and times the record common to all copy directions.
func (d *Device) recordCopy(dst, src DevicePtr, n uint64, kind MemcpyKind, stream *Stream) *APIRecord {
	streamID := 0
	if stream != nil {
		streamID = stream.id
	}
	rec := d.newRecord(APIMemcpy, "cudaMemcpy", streamID)
	rec.Dst, rec.Src, rec.Size, rec.CopyKind = dst, src, n, kind
	cost := d.copyCost(n)
	if stream == nil {
		rec.StartCycle, rec.EndCycle = d.hostSyncOp(cost)
	} else {
		rec.StartCycle, rec.EndCycle = d.streamOp(stream, cost)
	}
	return rec
}

// Memset fills n bytes of device memory with value on the given stream
// (nil means the synchronous form).
func (d *Device) Memset(ptr DevicePtr, value byte, n uint64, stream *Stream) error {
	b, off, err := d.resolveSpan(ptr, n)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		b.data[off+i] = value
	}
	streamID := 0
	if stream != nil {
		streamID = stream.id
	}
	rec := d.newRecord(APIMemset, "cudaMemset", streamID)
	rec.Ptr, rec.Size = ptr, n
	cost := d.copyCost(n)
	if stream == nil {
		rec.StartCycle, rec.EndCycle = d.hostSyncOp(cost)
	} else {
		rec.StartCycle, rec.EndCycle = d.streamOp(stream, cost)
	}
	rec.Writes = []Range{{Addr: ptr, Size: n}}
	d.emit(rec)
	return nil
}
