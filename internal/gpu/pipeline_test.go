package gpu

import (
	"testing"
)

// eventHook records the interleaving of hook callbacks. The pipeline's
// ordering contract makes this safe without a lock: every OnAccessBatch
// for a kernel is delivered (on the consumer goroutine) before the drain
// barrier that precedes that kernel's OnAPI (on the app goroutine), so
// the appends are totally ordered by the drain's happens-before edge.
type eventHook struct {
	events  []string // "batch:<kernel>" and "api:<name>" in delivery order
	batches [][]MemAccess
}

func (h *eventHook) OnAPI(rec *APIRecord) {
	h.events = append(h.events, "api:"+rec.Name)
}

func (h *eventHook) OnAccessBatch(rec *APIRecord, batch []MemAccess) {
	h.events = append(h.events, "batch:"+rec.Name)
	h.batches = append(h.batches, append([]MemAccess(nil), batch...))
}

// runPipelineWorkload drives a small instrumented workload: n kernels,
// each touching the same buffer, with a Malloc/Free pair around them.
func runPipelineWorkload(tb testing.TB, dev *Device, n int) {
	tb.Helper()
	p, err := dev.Malloc(256)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		err := dev.LaunchFunc(nil, "pipek", Dim1(1), Dim1(4), func(ctx *ExecContext) {
			for j := 0; j < 8; j++ {
				ctx.StoreF32(p+DevicePtr(4*j), float32(j))
				ctx.LoadF32(p + DevicePtr(4*j))
			}
		})
		if err != nil {
			tb.Fatal(err)
		}
	}
	if err := dev.Free(p); err != nil {
		tb.Fatal(err)
	}
}

// TestPipelineOrderingAndIdentity pins the hand-off contract: with the
// pipeline attached, every hook still sees each kernel's OnAccessBatch
// strictly before that kernel's OnAPI, and the delivered batches are
// element-identical to a non-pipelined run of the same workload.
func TestPipelineOrderingAndIdentity(t *testing.T) {
	run := func(pipelined bool) *eventHook {
		dev := NewDevice(SpecTest())
		h := &eventHook{}
		dev.AddHook(h)
		dev.SetPatchLevel(PatchFull)
		if pipelined {
			dev.StartPipelinedIngest()
			defer dev.StopPipelinedIngest()
		}
		runPipelineWorkload(t, dev, 5)
		return h
	}
	seq, piped := run(false), run(true)

	if len(piped.events) != len(seq.events) {
		t.Fatalf("pipelined run delivered %d events, sequential %d", len(piped.events), len(seq.events))
	}
	for i := range piped.events {
		if piped.events[i] != seq.events[i] {
			t.Fatalf("event %d: pipelined %q vs sequential %q", i, piped.events[i], seq.events[i])
		}
	}
	if len(piped.batches) != len(seq.batches) {
		t.Fatalf("pipelined run delivered %d batches, sequential %d", len(piped.batches), len(seq.batches))
	}
	for i := range piped.batches {
		if len(piped.batches[i]) != len(seq.batches[i]) {
			t.Fatalf("batch %d: %d accesses pipelined vs %d sequential", i, len(piped.batches[i]), len(seq.batches[i]))
		}
		for j, a := range piped.batches[i] {
			if a != seq.batches[i][j] {
				t.Fatalf("batch %d access %d differs: %+v vs %+v", i, j, a, seq.batches[i][j])
			}
		}
	}
}

// TestPipelineStatsAndLifecycle covers the observability surface and the
// idempotence of the lifecycle calls: stats count the handed-off batches,
// survive Stop, and double Start/Stop are no-ops.
func TestPipelineStatsAndLifecycle(t *testing.T) {
	dev := NewDevice(SpecTest())
	dev.AddHook(&eventHook{})
	dev.SetPatchLevel(PatchFull)
	dev.StartPipelinedIngest()
	dev.StartPipelinedIngest() // idempotent
	runPipelineWorkload(t, dev, 7)
	live := dev.PipelineStats()
	if live.Batches == 0 {
		t.Error("live stats report zero batches")
	}
	dev.StopPipelinedIngest()
	dev.StopPipelinedIngest() // idempotent
	saved := dev.PipelineStats()
	if saved.Batches != live.Batches {
		t.Errorf("saved stats %d batches, live reported %d", saved.Batches, live.Batches)
	}
	if saved.DepthHighWater < 0 || saved.DepthHighWater > pipeDepth {
		t.Errorf("depth high-water %d outside [0, %d]", saved.DepthHighWater, pipeDepth)
	}

	// A stopped device must keep working sequentially.
	runPipelineWorkload(t, dev, 1)
	if got := dev.PipelineStats().Batches; got != saved.Batches {
		t.Errorf("sequential run after Stop changed pipeline stats: %d -> %d", saved.Batches, got)
	}
}

// TestPipelineHandoffAllocs is the steady-state allocation guard: once
// the free-list is primed, handing a batch to the consumer and draining
// it back must not allocate — buffers are recycled through the free
// channel and tasks are passed by value. A regression here reintroduces
// per-batch garbage on the hot path the pipeline exists to keep cheap.
func TestPipelineHandoffAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	dev := NewDevice(SpecTest())
	dev.AddHook(&noopHook{})
	dev.SetPatchLevel(PatchFull)
	dev.StartPipelinedIngest()
	defer dev.StopPipelinedIngest()

	rec := &APIRecord{Name: "allocs", Kind: APIKernel}
	hand := func() {
		dev.batch = append(dev.batch[:0], MemAccess{Addr: 64, Size: 4})
		dev.batch = dev.pipe.send(rec, dev.batch)
		dev.pipe.drain()
	}
	for i := 0; i < 32; i++ { // prime the free-list and warm the consumer
		hand()
	}
	if avg := testing.AllocsPerRun(200, hand); avg != 0 {
		t.Errorf("pipelined hand-off allocates %.1f objects/op, want 0", avg)
	}
}

// noopHook drops everything; the allocation guard needs a consumer-side
// callback that provably does not allocate itself.
type noopHook struct{}

func (noopHook) OnAPI(*APIRecord)                      {}
func (noopHook) OnAccessBatch(*APIRecord, []MemAccess) {}
