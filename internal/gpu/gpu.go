// Package gpu implements a deterministic GPU runtime simulator.
//
// The simulator stands in for the CUDA driver/runtime that DrGPUM (ASPLOS
// 2023) profiles on real NVIDIA hardware. It provides the same observable
// surface the paper's analyses consume:
//
//   - the five GPU API classes the paper tracks (memory allocation,
//     deallocation, copy, set, and kernel launch),
//   - streams with in-order execution per stream,
//   - per-memory-instruction visibility for instrumented kernels, and
//   - a latency/bandwidth cost model so shared-vs-global placement decisions
//     change simulated execution time the way they do on real devices.
//
// Everything is deterministic: stream concurrency is modelled with per-stream
// simulated clocks rather than goroutines, so a given program produces a
// byte-for-byte identical event stream on every run.
package gpu

import "fmt"

// DevicePtr is a virtual device address. Address 0 is the null pointer and is
// never returned by Malloc.
type DevicePtr uint64

// MemSpace identifies which simulated memory space an access touches.
type MemSpace uint8

const (
	// SpaceGlobal is device global memory (backed by the device allocator).
	SpaceGlobal MemSpace = iota
	// SpaceShared is per-launch scratch memory (the analog of CUDA shared
	// memory). Shared accesses are cheap under the cost model and are never
	// attributed to data objects.
	SpaceShared
)

// String returns the space name.
func (s MemSpace) String() string {
	switch s {
	case SpaceGlobal:
		return "global"
	case SpaceShared:
		return "shared"
	default:
		return fmt.Sprintf("space(%d)", uint8(s))
	}
}

// AccessKind says whether a memory instruction reads or writes.
type AccessKind uint8

const (
	// AccessRead is a load.
	AccessRead AccessKind = iota
	// AccessWrite is a store.
	AccessWrite
)

// String returns "read" or "write".
func (k AccessKind) String() string {
	if k == AccessWrite {
		return "write"
	}
	return "read"
}

// APIKind enumerates the GPU API classes the profiler observes. These are
// exactly the five classes in the paper's Definition footnote: "GPU APIs
// include memory allocation, deallocation, copy, and set, and kernel launch".
type APIKind uint8

const (
	// APIMalloc is a device memory allocation (cudaMalloc analog).
	APIMalloc APIKind = iota
	// APIFree is a device memory deallocation (cudaFree analog).
	APIFree
	// APIMemcpy is a memory copy (cudaMemcpy analog, any direction).
	APIMemcpy
	// APIMemset is a memory set (cudaMemset analog).
	APIMemset
	// APIKernel is a kernel launch.
	APIKernel
)

// String returns the GUI-style short name used in the paper's Figure 7
// (ALLOC, FREE, CPY, SET, KERL).
func (k APIKind) String() string {
	switch k {
	case APIMalloc:
		return "ALLOC"
	case APIFree:
		return "FREE"
	case APIMemcpy:
		return "CPY"
	case APIMemset:
		return "SET"
	case APIKernel:
		return "KERL"
	default:
		return fmt.Sprintf("API(%d)", uint8(k))
	}
}

// MemcpyKind is the direction of a memory copy.
type MemcpyKind uint8

const (
	// CopyHostToDevice copies host data into device memory.
	CopyHostToDevice MemcpyKind = iota
	// CopyDeviceToHost copies device data back to the host.
	CopyDeviceToHost
	// CopyDeviceToDevice copies between two device buffers.
	CopyDeviceToDevice
)

// String returns a short direction label.
func (k MemcpyKind) String() string {
	switch k {
	case CopyHostToDevice:
		return "H2D"
	case CopyDeviceToHost:
		return "D2H"
	case CopyDeviceToDevice:
		return "D2D"
	default:
		return fmt.Sprintf("copy(%d)", uint8(k))
	}
}

// Range is a half-open address interval [Addr, Addr+Size).
type Range struct {
	Addr DevicePtr
	Size uint64
}

// End returns the exclusive end address of the range.
func (r Range) End() DevicePtr { return r.Addr + DevicePtr(r.Size) }

// Contains reports whether addr lies inside the range.
func (r Range) Contains(addr DevicePtr) bool {
	return addr >= r.Addr && addr < r.End()
}

// Overlaps reports whether two ranges intersect.
func (r Range) Overlaps(o Range) bool {
	return r.Addr < o.End() && o.Addr < r.End()
}

// String formats the range as [addr, end).
func (r Range) String() string {
	return fmt.Sprintf("[0x%x, 0x%x)", uint64(r.Addr), uint64(r.End()))
}

// PatchLevel selects how much instrumentation the Sanitizer-analog applies.
// It mirrors DrGPUM's two analysis granularities plus native execution.
type PatchLevel uint8

const (
	// PatchNone runs kernels natively: no per-access work at all. This is
	// the Figure 6 baseline.
	PatchNone PatchLevel = iota
	// PatchAPI enables object-level analysis: every GPU API is intercepted
	// and kernels identify which data objects they touch via the GPU-side
	// hit-flag scheme of paper §5.5 (Figure 5), but individual accesses are
	// not streamed out.
	PatchAPI
	// PatchFull enables intra-object analysis: in addition to PatchAPI work,
	// every memory instruction of instrumented kernels is recorded.
	PatchFull
)

// String names the patch level.
func (p PatchLevel) String() string {
	switch p {
	case PatchNone:
		return "none"
	case PatchAPI:
		return "object-level"
	case PatchFull:
		return "intra-object"
	default:
		return fmt.Sprintf("patch(%d)", uint8(p))
	}
}

// MemAccess is one executed memory instruction, as surfaced to instrumentation
// at PatchFull. Size is the instruction's access width in bytes.
type MemAccess struct {
	Addr  DevicePtr
	Size  uint32
	Kind  AccessKind
	Space MemSpace
	// Value carries the stored value for typed writes of up to eight
	// bytes (HasValue reports validity). Value-aware tools consume this;
	// DrGPUM itself is value-agnostic and ignores it.
	Value    uint64
	HasValue bool
}

// Dim3 is a CUDA-style launch dimension.
type Dim3 struct{ X, Y, Z int }

// Count returns the number of elements covered by the dimension, treating
// zero components as one.
func (d Dim3) Count() int {
	x, y, z := d.X, d.Y, d.Z
	if x <= 0 {
		x = 1
	}
	if y <= 0 {
		y = 1
	}
	if z <= 0 {
		z = 1
	}
	return x * y * z
}

// Dim1 builds a one-dimensional Dim3.
func Dim1(x int) Dim3 { return Dim3{X: x, Y: 1, Z: 1} }
