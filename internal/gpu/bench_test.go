package gpu

import "testing"

// BenchmarkAllocatorChurn measures raw alloc/free throughput (the device
// allocation fast path under steady churn).
func BenchmarkAllocatorChurn(b *testing.B) {
	a := NewAllocator(64<<20, 256)
	var ptrs [64]DevicePtr
	for i := range ptrs {
		p, err := a.Alloc(4096)
		if err != nil {
			b.Fatal(err)
		}
		ptrs[i] = p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % len(ptrs)
		if err := a.Free(ptrs[slot]); err != nil {
			b.Fatal(err)
		}
		p, err := a.Alloc(uint64(256 * (1 + i%16)))
		if err != nil {
			b.Fatal(err)
		}
		ptrs[slot] = p
	}
}

// kernelAccessBench runs a fixed access volume at the given patch level to
// quantify per-access instrumentation cost — the microscopic version of
// Figure 6.
func kernelAccessBench(b *testing.B, level PatchLevel) {
	dev := NewDevice(SpecTest())
	if level != PatchNone {
		dev.AddHook(&recordingHook{})
	}
	dev.SetPatchLevel(level)
	buf, _ := dev.Malloc(64 << 10)
	const accesses = 16384
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dev.LaunchFunc(nil, "bench", Dim1(64), Dim1(256), func(ctx *ExecContext) {
			for j := 0; j < accesses; j++ {
				ctx.StoreU32(buf+DevicePtr((j%4096)*16), uint32(j))
			}
		})
	}
	b.ReportMetric(float64(accesses), "accesses/op")
}

func BenchmarkKernelAccessNative(b *testing.B)      { kernelAccessBench(b, PatchNone) }
func BenchmarkKernelAccessObjectLvl(b *testing.B)   { kernelAccessBench(b, PatchAPI) }
func BenchmarkKernelAccessIntraObject(b *testing.B) { kernelAccessBench(b, PatchFull) }

// BenchmarkHitFlagLookup isolates the device-side binary search of the
// Figure 5 scheme across many live objects.
func BenchmarkHitFlagLookup(b *testing.B) {
	dev := NewDevice(DeviceSpec{Name: "bench", MemoryCapacity: 64 << 20, Alignment: 256,
		CopyBytesPerCycle: 100})
	dev.AddHook(&recordingHook{})
	dev.SetPatchLevel(PatchAPI)
	var ptrs []DevicePtr
	for i := 0; i < 512; i++ {
		p, err := dev.Malloc(4096)
		if err != nil {
			b.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dev.LaunchFunc(nil, "scatter", Dim1(1), Dim1(32), func(ctx *ExecContext) {
			for j := 0; j < 1024; j++ {
				ctx.StoreU32(ptrs[(j*37)%len(ptrs)], uint32(j))
			}
		})
	}
}
