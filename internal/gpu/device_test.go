package gpu

import (
	"bytes"
	"errors"
	"testing"
)

// recordingHook captures everything the device emits.
type recordingHook struct {
	apis    []*APIRecord
	batches [][]MemAccess
}

func (h *recordingHook) OnAPI(rec *APIRecord) { h.apis = append(h.apis, rec) }
func (h *recordingHook) OnAccessBatch(_ *APIRecord, b []MemAccess) {
	cp := make([]MemAccess, len(b))
	copy(cp, b)
	h.batches = append(h.batches, cp)
}

func (h *recordingHook) byKind(k APIKind) []*APIRecord {
	var out []*APIRecord
	for _, r := range h.apis {
		if r.Kind == k {
			out = append(out, r)
		}
	}
	return out
}

func TestMemcpyRoundtrip(t *testing.T) {
	dev := NewDevice(SpecTest())
	p, err := dev.Malloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, 1024)
	for i := range src {
		src[i] = byte(i * 3)
	}
	if err := dev.MemcpyHtoD(p, src, nil); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 1024)
	if err := dev.MemcpyDtoH(dst, p, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Error("H2D followed by D2H did not round-trip")
	}

	// Partial copy at an interior offset.
	if err := dev.MemcpyHtoD(p+100, []byte{0xaa, 0xbb}, nil); err != nil {
		t.Fatal(err)
	}
	if err := dev.MemcpyDtoH(dst[:4], p+99, nil); err != nil {
		t.Fatal(err)
	}
	if dst[1] != 0xaa || dst[2] != 0xbb {
		t.Errorf("interior copy: got % x", dst[:4])
	}
}

func TestMemcpyDtoD(t *testing.T) {
	dev := NewDevice(SpecTest())
	a, _ := dev.Malloc(256)
	b, _ := dev.Malloc(256)
	if err := dev.MemcpyHtoD(a, bytes.Repeat([]byte{7}, 256), nil); err != nil {
		t.Fatal(err)
	}
	if err := dev.MemcpyDtoD(b, a, 256, nil); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 256)
	if err := dev.MemcpyDtoH(out, b, nil); err != nil {
		t.Fatal(err)
	}
	if out[0] != 7 || out[255] != 7 {
		t.Errorf("D2D copy content: % x...", out[:4])
	}
}

func TestMemsetContent(t *testing.T) {
	dev := NewDevice(SpecTest())
	p, _ := dev.Malloc(64)
	if err := dev.Memset(p, 0x5c, 64, nil); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 64)
	if err := dev.MemcpyDtoH(out, p, nil); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 0x5c {
			t.Fatalf("byte %d = %#x after memset", i, v)
		}
	}
}

func TestCopyBoundsErrors(t *testing.T) {
	dev := NewDevice(SpecTest())
	p, _ := dev.Malloc(100)
	if err := dev.MemcpyHtoD(p, make([]byte, 101), nil); !errors.Is(err, ErrBadCopy) {
		t.Errorf("overlong copy: %v, want ErrBadCopy", err)
	}
	if err := dev.MemcpyHtoD(p+0x100000, make([]byte, 1), nil); !errors.Is(err, ErrBadCopy) {
		t.Errorf("copy to wild pointer: %v, want ErrBadCopy", err)
	}
	if err := dev.Memset(p+96, 0, 8, nil); !errors.Is(err, ErrBadCopy) {
		t.Errorf("memset crossing the end: %v, want ErrBadCopy", err)
	}
}

func TestAPIRecordsAndSeqLabels(t *testing.T) {
	dev := NewDevice(SpecTest())
	h := &recordingHook{}
	dev.AddHook(h)
	dev.SetPatchLevel(PatchAPI)

	p, _ := dev.Malloc(256)
	q, _ := dev.Malloc(256)
	_ = dev.Memset(p, 0, 256, nil)
	_ = dev.MemcpyHtoD(q, make([]byte, 256), nil)
	_ = dev.Free(p)

	if len(h.apis) != 5 {
		t.Fatalf("got %d records, want 5", len(h.apis))
	}
	for i, rec := range h.apis {
		if rec.Index != uint64(i) {
			t.Errorf("record %d has Index %d", i, rec.Index)
		}
	}
	mallocs := h.byKind(APIMalloc)
	if mallocs[0].SeqInStream != 0 || mallocs[1].SeqInStream != 1 {
		t.Errorf("malloc sequence numbers: %d, %d", mallocs[0].SeqInStream, mallocs[1].SeqInStream)
	}
	cpy := h.byKind(APIMemcpy)[0]
	if len(cpy.Writes) != 1 || cpy.Writes[0].Addr != q || cpy.Writes[0].Size != 256 {
		t.Errorf("H2D write range = %v", cpy.Writes)
	}
	if cpy.CopyKind != CopyHostToDevice {
		t.Errorf("copy kind = %v", cpy.CopyKind)
	}
}

func TestPatchNoneEmitsNothing(t *testing.T) {
	dev := NewDevice(SpecTest())
	h := &recordingHook{}
	dev.AddHook(h)
	// PatchNone is the default: native execution, zero callbacks.
	p, _ := dev.Malloc(256)
	_ = dev.Memset(p, 0, 256, nil)
	_ = dev.LaunchFunc(nil, "k", Dim1(1), Dim1(1), func(ctx *ExecContext) {
		ctx.StoreU32(p, 42)
	})
	if len(h.apis) != 0 || len(h.batches) != 0 {
		t.Errorf("native execution emitted %d records, %d batches", len(h.apis), len(h.batches))
	}
}

func TestStreamClocksAndSynchronize(t *testing.T) {
	dev := NewDevice(SpecTest())
	s1 := dev.CreateStream()
	if s1.ID() != 1 {
		t.Errorf("first created stream ID = %d, want 1", s1.ID())
	}

	a, _ := dev.Malloc(1000)
	b, _ := dev.Malloc(1000)
	base := dev.Elapsed()

	// Async ops on different streams start from their own clocks.
	if err := dev.Memset(a, 0, 1000, dev.DefaultStream()); err != nil {
		t.Fatal(err)
	}
	if err := dev.Memset(b, 0, 1000, s1); err != nil {
		t.Fatal(err)
	}
	// Both streams started at base; each memset costs 10 cycles
	// (1000 bytes / 100 per cycle), so the device time advanced by one
	// memset, not two: the streams overlapped.
	if got := dev.Elapsed(); got != base+10 {
		t.Errorf("elapsed after two overlapping memsets = %d, want %d", got, base+10)
	}

	dev.Synchronize()
	// A host-synchronous op now starts after both streams.
	if err := dev.Memset(a, 0, 1000, nil); err != nil {
		t.Fatal(err)
	}
	if got := dev.Elapsed(); got != base+20 {
		t.Errorf("elapsed after sync + sync memset = %d, want %d", got, base+20)
	}
}

func TestHostSyncOpJoinsStreams(t *testing.T) {
	dev := NewDevice(SpecTest())
	s1 := dev.CreateStream()
	a, _ := dev.Malloc(4096)
	// Long async op on stream 1.
	if err := dev.Memset(a, 0, 4096, s1); err != nil {
		t.Fatal(err)
	}
	before := dev.Elapsed()
	// Malloc synchronizes the device: it must start at the max clock.
	if _, err := dev.Malloc(64); err != nil {
		t.Fatal(err)
	}
	if got := dev.Elapsed(); got != before+SpecTest().MallocCycles {
		t.Errorf("malloc after async work: elapsed %d, want %d", got, before+SpecTest().MallocCycles)
	}
}

func TestCustomAllocRecords(t *testing.T) {
	dev := NewDevice(SpecTest())
	h := &recordingHook{}
	dev.AddHook(h)
	dev.SetPatchLevel(PatchAPI)

	dev.CustomAlloc("pool.alloc", 0x9000, 512)
	dev.CustomFree("pool.free", 0x9000)

	if len(h.apis) != 2 {
		t.Fatalf("got %d records", len(h.apis))
	}
	if h.apis[0].Kind != APIMalloc || !h.apis[0].Custom || h.apis[0].Size != 512 {
		t.Errorf("custom alloc record = %+v", h.apis[0])
	}
	if h.apis[1].Kind != APIFree || !h.apis[1].Custom {
		t.Errorf("custom free record = %+v", h.apis[1])
	}
	// Custom APIs must not touch the allocator.
	if dev.MemStats().InUse != 0 {
		t.Errorf("custom alloc changed allocator usage: %d", dev.MemStats().InUse)
	}
}

func TestFaultsReported(t *testing.T) {
	dev := NewDevice(SpecTest())
	h := &recordingHook{}
	dev.AddHook(h)
	dev.SetPatchLevel(PatchAPI)

	p, _ := dev.Malloc(16)
	_ = dev.LaunchFunc(nil, "oob", Dim1(1), Dim1(1), func(ctx *ExecContext) {
		ctx.StoreU32(p+12, 1) // in bounds
		ctx.StoreU32(p+16, 2) // out of bounds
		_ = ctx.LoadU32(p + 1024)
	})
	kerl := h.byKind(APIKernel)[0]
	if len(kerl.Faults) != 2 {
		t.Fatalf("got %d faults, want 2: %+v", len(kerl.Faults), kerl.Faults)
	}
	if kerl.Faults[0].Addr != p+16 || kerl.Faults[0].Kind != AccessWrite {
		t.Errorf("first fault = %+v", kerl.Faults[0])
	}
	if kerl.Faults[1].Kind != AccessRead {
		t.Errorf("second fault = %+v", kerl.Faults[1])
	}
}
