//go:build !race

package gpu

// raceEnabled reports whether the race detector instruments this build;
// allocation-count guards skip under it (instrumentation allocates).
const raceEnabled = false
