package gpu

import (
	"errors"
	"testing"
)

func TestEventOrdersStreams(t *testing.T) {
	dev := NewDevice(SpecTest())
	s1 := dev.CreateStream()
	s2 := dev.CreateStream()
	buf, _ := dev.Malloc(10_000)

	// Producer on s1: a long memset (100 cycles at 100 B/cycle).
	if err := dev.Memset(buf, 1, 10_000, s1); err != nil {
		t.Fatal(err)
	}
	done := dev.NewEvent()
	dev.EventRecord(done, s1)

	// Consumer on s2 must not start before the producer's point.
	if err := dev.StreamWaitEvent(s2, done); err != nil {
		t.Fatal(err)
	}
	start := dev.Elapsed()
	if err := dev.Memset(buf, 2, 1000, s2); err != nil {
		t.Fatal(err)
	}
	// s2's op started at the event's cycle, not at 0.
	if got := dev.Elapsed(); got != start+10 {
		t.Errorf("elapsed = %d, want consumer to start after the event (%d)", got, start+10)
	}
}

func TestEventErrors(t *testing.T) {
	dev := NewDevice(SpecTest())
	e := dev.NewEvent()
	if err := dev.StreamWaitEvent(nil, e); !errors.Is(err, ErrEventNotRecorded) {
		t.Errorf("wait on unrecorded event: %v", err)
	}
	if err := dev.EventSynchronize(e); !errors.Is(err, ErrEventNotRecorded) {
		t.Errorf("sync on unrecorded event: %v", err)
	}
	if _, err := EventElapsed(e, e); !errors.Is(err, ErrEventNotRecorded) {
		t.Errorf("elapsed on unrecorded events: %v", err)
	}
}

func TestEventElapsedMeasuresStreamWork(t *testing.T) {
	dev := NewDevice(SpecTest())
	s := dev.CreateStream()
	buf, _ := dev.Malloc(4096)

	start := dev.NewEvent()
	dev.EventRecord(start, s)
	if err := dev.Memset(buf, 0, 4096, s); err != nil { // 4096/100 -> 40 cycles
		t.Fatal(err)
	}
	end := dev.NewEvent()
	dev.EventRecord(end, s)

	if err := dev.EventSynchronize(end); err != nil {
		t.Fatal(err)
	}
	d, err := EventElapsed(start, end)
	if err != nil {
		t.Fatal(err)
	}
	if d != 40 {
		t.Errorf("elapsed = %d cycles, want 40", d)
	}
	// Reversed order clamps to zero.
	if d, _ := EventElapsed(end, start); d != 0 {
		t.Errorf("reversed elapsed = %d", d)
	}
}

func TestEventRerecord(t *testing.T) {
	dev := NewDevice(SpecTest())
	s := dev.CreateStream()
	buf, _ := dev.Malloc(4096)
	e := dev.NewEvent()
	dev.EventRecord(e, s)
	first := e.cycle
	_ = dev.Memset(buf, 0, 4096, s)
	dev.EventRecord(e, s)
	if e.cycle == first {
		t.Error("re-record did not move the event")
	}
}

func TestEventsDoNotAppearInTrace(t *testing.T) {
	dev := NewDevice(SpecTest())
	h := &recordingHook{}
	dev.AddHook(h)
	dev.SetPatchLevel(PatchAPI)

	e := dev.NewEvent()
	dev.EventRecord(e, nil)
	_ = dev.StreamWaitEvent(dev.CreateStream(), e)

	if len(h.apis) != 0 {
		t.Errorf("events emitted %d API records; they are not Definition 5.1 vertices", len(h.apis))
	}
}
