package gpu

import (
	"errors"
	"fmt"
	"sort"
)

// Allocation errors returned by the device allocator.
var (
	// ErrOutOfMemory is returned when an allocation does not fit in the
	// remaining device memory (the cudaErrorMemoryAllocation analog).
	ErrOutOfMemory = errors.New("gpu: out of device memory")
	// ErrInvalidFree is returned when freeing a pointer that was not
	// returned by Malloc or was already freed.
	ErrInvalidFree = errors.New("gpu: invalid device free")
)

// allocBase is the first virtual address handed out. Keeping it well above
// zero makes accidental null-pointer arithmetic visible in traces.
const allocBase DevicePtr = 0x1000_0000

// block is a live allocation.
type block struct {
	addr DevicePtr
	size uint64 // aligned size actually reserved
	req  uint64 // size the caller asked for
	data []byte // backing bytes (len == req)
	seq  uint64 // allocation sequence number
}

// freeSpan is a hole in the address space.
type freeSpan struct {
	addr DevicePtr
	size uint64
}

// Allocator is a first-fit free-list allocator over a virtual device address
// space. It is the substrate for the paper's peak-memory measurements: it
// tracks current and peak usage exactly as cudaMalloc bookkeeping would.
type Allocator struct {
	capacity  uint64
	alignment uint64

	free   []freeSpan // sorted by address, coalesced
	blocks []*block   // sorted by address

	inUse     uint64
	peak      uint64
	allocSeq  uint64
	liveCount int
}

// NewAllocator creates an allocator managing capacity bytes with the given
// allocation alignment (must be a power of two; 0 means 256).
func NewAllocator(capacity, alignment uint64) *Allocator {
	if alignment == 0 {
		alignment = 256
	}
	if alignment&(alignment-1) != 0 {
		panic(fmt.Sprintf("gpu: alignment %d is not a power of two", alignment))
	}
	return &Allocator{
		capacity:  capacity,
		alignment: alignment,
		free:      []freeSpan{{addr: allocBase, size: capacity}},
	}
}

func (a *Allocator) alignUp(n uint64) uint64 {
	return (n + a.alignment - 1) &^ (a.alignment - 1)
}

// Alloc reserves size bytes and returns the base address. A zero-byte request
// is rounded up to one aligned unit, matching cudaMalloc behaviour of
// returning a unique pointer.
func (a *Allocator) Alloc(size uint64) (DevicePtr, error) {
	req := size
	if size == 0 {
		size = 1
	}
	aligned := a.alignUp(size)
	for i, span := range a.free {
		if span.size < aligned {
			continue
		}
		addr := span.addr
		if span.size == aligned {
			a.free = append(a.free[:i], a.free[i+1:]...)
		} else {
			a.free[i].addr += DevicePtr(aligned)
			a.free[i].size -= aligned
		}
		a.allocSeq++
		b := &block{addr: addr, size: aligned, req: req, data: make([]byte, req), seq: a.allocSeq}
		a.insertBlock(b)
		a.inUse += aligned
		a.liveCount++
		if a.inUse > a.peak {
			a.peak = a.inUse
		}
		return addr, nil
	}
	return 0, fmt.Errorf("%w: requested %d bytes, %d of %d in use", ErrOutOfMemory, size, a.inUse, a.capacity)
}

// Free releases the allocation starting exactly at ptr.
func (a *Allocator) Free(ptr DevicePtr) error {
	i := a.blockIndex(ptr)
	if i < 0 {
		return fmt.Errorf("%w: 0x%x", ErrInvalidFree, uint64(ptr))
	}
	b := a.blocks[i]
	a.blocks = append(a.blocks[:i], a.blocks[i+1:]...)
	a.inUse -= b.size
	a.liveCount--
	a.insertFree(freeSpan{addr: b.addr, size: b.size})
	return nil
}

// insertBlock keeps blocks sorted by address.
func (a *Allocator) insertBlock(b *block) {
	i := sort.Search(len(a.blocks), func(i int) bool { return a.blocks[i].addr > b.addr })
	a.blocks = append(a.blocks, nil)
	copy(a.blocks[i+1:], a.blocks[i:])
	a.blocks[i] = b
}

// insertFree inserts a span keeping the list sorted and coalesced.
func (a *Allocator) insertFree(s freeSpan) {
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].addr > s.addr })
	a.free = append(a.free, freeSpan{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = s
	// Coalesce with successor first, then predecessor.
	if i+1 < len(a.free) && a.free[i].addr+DevicePtr(a.free[i].size) == a.free[i+1].addr {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].addr+DevicePtr(a.free[i-1].size) == a.free[i].addr {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// blockIndex returns the index of the block starting exactly at ptr, or -1.
func (a *Allocator) blockIndex(ptr DevicePtr) int {
	i := sort.Search(len(a.blocks), func(i int) bool { return a.blocks[i].addr >= ptr })
	if i < len(a.blocks) && a.blocks[i].addr == ptr {
		return i
	}
	return -1
}

// lookup returns the block containing addr, or nil.
func (a *Allocator) lookup(addr DevicePtr) *block {
	i := sort.Search(len(a.blocks), func(i int) bool { return a.blocks[i].addr > addr })
	if i == 0 {
		return nil
	}
	b := a.blocks[i-1]
	if addr < b.addr+DevicePtr(b.req) {
		return b
	}
	return nil
}

// AllocStats is a snapshot of allocator accounting.
type AllocStats struct {
	// Capacity is the managed address-space size in bytes.
	Capacity uint64
	// InUse is the number of bytes currently reserved (aligned sizes).
	InUse uint64
	// Peak is the high-water mark of InUse over the allocator's lifetime.
	Peak uint64
	// LiveAllocations is the number of outstanding allocations.
	LiveAllocations int
	// TotalAllocations counts every Alloc call ever made.
	TotalAllocations uint64
	// FreeSpans is the number of holes in the address space; a large number
	// relative to LiveAllocations indicates external fragmentation.
	FreeSpans int
	// LargestFreeSpan is the biggest allocation that would currently succeed.
	LargestFreeSpan uint64
}

// Stats returns a snapshot of the allocator's accounting.
func (a *Allocator) Stats() AllocStats {
	var largest uint64
	for _, s := range a.free {
		if s.size > largest {
			largest = s.size
		}
	}
	return AllocStats{
		Capacity:         a.capacity,
		InUse:            a.inUse,
		Peak:             a.peak,
		LiveAllocations:  a.liveCount,
		TotalAllocations: a.allocSeq,
		FreeSpans:        len(a.free),
		LargestFreeSpan:  largest,
	}
}

// ResetPeak sets the peak high-water mark back to the current usage. The
// optimization experiments use this to measure the peak of a specific phase.
func (a *Allocator) ResetPeak() { a.peak = a.inUse }

// Live returns the address ranges of all outstanding allocations in address
// order. The ranges report requested (not aligned) sizes, because accesses
// beyond the requested size are out of bounds.
func (a *Allocator) Live() []Range {
	out := make([]Range, len(a.blocks))
	for i, b := range a.blocks {
		out[i] = Range{Addr: b.addr, Size: b.req}
	}
	return out
}
