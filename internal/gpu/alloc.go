package gpu

import (
	"errors"
	"fmt"
	"sort"
)

// Allocation errors returned by the device allocator.
var (
	// ErrOutOfMemory is returned when an allocation does not fit in the
	// remaining device memory (the cudaErrorMemoryAllocation analog).
	ErrOutOfMemory = errors.New("gpu: out of device memory")
	// ErrInvalidFree is returned when freeing a pointer that was not
	// returned by Malloc or was already freed.
	ErrInvalidFree = errors.New("gpu: invalid device free")
)

// allocBase is the first virtual address handed out. Keeping it well above
// zero makes accidental null-pointer arithmetic visible in traces.
const allocBase DevicePtr = 0x1000_0000

// block is a live allocation.
type block struct {
	addr DevicePtr
	size uint64 // aligned size actually reserved for the caller's bytes
	req  uint64 // size the caller asked for
	data []byte // backing bytes (len == req)
	seq  uint64 // allocation sequence number

	// base/total describe the full reserved span including red zones;
	// without red zones base == addr and total == size.
	base  DevicePtr
	total uint64
}

// freeSpan is a hole in the address space.
type freeSpan struct {
	addr DevicePtr
	size uint64
}

// quarantined is a freed allocation parked before its address space is
// reusable (the memcheck use-after-free window).
type quarantined struct {
	span freeSpan // full reserved span, returned to the free list on drain
	addr DevicePtr
	req  uint64
}

// Allocator is a first-fit free-list allocator over a virtual device address
// space. It is the substrate for the paper's peak-memory measurements: it
// tracks current and peak usage exactly as cudaMalloc bookkeeping would.
type Allocator struct {
	capacity  uint64
	alignment uint64

	free   []freeSpan // sorted by address, coalesced
	blocks []*block   // sorted by address

	inUse     uint64
	peak      uint64
	allocSeq  uint64
	liveCount int

	// redzone is the guard-byte count reserved on each side of every
	// allocation (0 disables; memcheck enables it so small overflows land
	// in unmapped guard space instead of a neighboring allocation).
	redzone uint64
	// quarantine parks freed spans FIFO until their total bytes exceed
	// quarMax, delaying address reuse so stale pointers keep faulting.
	quarantine []quarantined
	quarBytes  uint64
	quarMax    uint64
	quarEvict  uint64

	faultPlan  FaultPlan
	allocCalls uint64
	injected   uint64
}

// NewAllocator creates an allocator managing capacity bytes with the given
// allocation alignment (must be a power of two; 0 means 256).
func NewAllocator(capacity, alignment uint64) *Allocator {
	if alignment == 0 {
		alignment = 256
	}
	if alignment&(alignment-1) != 0 {
		panic(fmt.Sprintf("gpu: alignment %d is not a power of two", alignment))
	}
	return &Allocator{
		capacity:  capacity,
		alignment: alignment,
		free:      []freeSpan{{addr: allocBase, size: capacity}},
	}
}

func (a *Allocator) alignUp(n uint64) uint64 {
	return (n + a.alignment - 1) &^ (a.alignment - 1)
}

// SetRedzone reserves n guard bytes (rounded up to the alignment) on each
// side of every subsequent allocation. Red zones are never part of any live
// range, so accesses spilling past an allocation's end fault instead of
// silently landing in the next allocation — the substrate of memcheck's
// out-of-bounds detection. Must be called before the first allocation;
// mixing red-zoned and plain blocks would make fault attribution ambiguous.
func (a *Allocator) SetRedzone(n uint64) {
	if len(a.blocks) > 0 || len(a.quarantine) > 0 {
		panic("gpu: SetRedzone after allocations exist")
	}
	if n > 0 {
		n = a.alignUp(n)
	}
	a.redzone = n
}

// Redzone returns the per-side guard size in effect (0 when disabled).
func (a *Allocator) Redzone() uint64 { return a.redzone }

// SetQuarantine bounds the freed-span quarantine at maxBytes of reserved
// space. Freed allocations are parked FIFO and their addresses stay
// unmapped until the quarantine overflows, so use-after-free accesses fault
// instead of hitting whatever reused the space. Zero drains and disables
// the quarantine.
func (a *Allocator) SetQuarantine(maxBytes uint64) {
	a.quarMax = maxBytes
	a.drainQuarantine()
}

// Alloc reserves size bytes and returns the base address. A zero-byte request
// is rounded up to one aligned unit, matching cudaMalloc behaviour of
// returning a unique pointer.
func (a *Allocator) Alloc(size uint64) (DevicePtr, error) {
	index := a.allocCalls
	a.allocCalls++
	if a.faultPlan.Enabled() && a.faultPlan.shouldFail(index) {
		a.injected++
		return 0, injectedFault(index)
	}
	req := size
	if size == 0 {
		size = 1
	}
	aligned := a.alignUp(size)
	total := aligned + 2*a.redzone
	for i, span := range a.free {
		if span.size < total {
			continue
		}
		base := span.addr
		if span.size == total {
			a.free = append(a.free[:i], a.free[i+1:]...)
		} else {
			a.free[i].addr += DevicePtr(total)
			a.free[i].size -= total
		}
		a.allocSeq++
		addr := base + DevicePtr(a.redzone)
		b := &block{addr: addr, size: aligned, req: req, data: make([]byte, req), seq: a.allocSeq,
			base: base, total: total}
		a.insertBlock(b)
		a.inUse += total
		a.liveCount++
		if a.inUse > a.peak {
			a.peak = a.inUse
		}
		return addr, nil
	}
	return 0, fmt.Errorf("%w: requested %d bytes, %d of %d in use", ErrOutOfMemory, size, a.inUse, a.capacity)
}

// Free releases the allocation starting exactly at ptr. With a quarantine
// configured the span is parked instead of returned to the free list, so
// its addresses stay unmapped for a while (use-after-free detection).
func (a *Allocator) Free(ptr DevicePtr) error {
	i := a.blockIndex(ptr)
	if i < 0 {
		return fmt.Errorf("%w: 0x%x", ErrInvalidFree, uint64(ptr))
	}
	b := a.blocks[i]
	a.blocks = append(a.blocks[:i], a.blocks[i+1:]...)
	a.inUse -= b.total
	a.liveCount--
	span := freeSpan{addr: b.base, size: b.total}
	if a.quarMax > 0 {
		a.quarantine = append(a.quarantine, quarantined{span: span, addr: b.addr, req: b.req})
		a.quarBytes += b.total
		a.drainQuarantine()
		return nil
	}
	a.insertFree(span)
	return nil
}

// drainQuarantine releases the oldest parked spans until the quarantine
// fits its budget again (all of them when the quarantine was disabled).
func (a *Allocator) drainQuarantine() {
	for len(a.quarantine) > 0 && a.quarBytes > a.quarMax {
		q := a.quarantine[0]
		a.quarantine = a.quarantine[1:]
		a.quarBytes -= q.span.size
		a.quarEvict++
		a.insertFree(q.span)
	}
}

// insertBlock keeps blocks sorted by address.
func (a *Allocator) insertBlock(b *block) {
	i := sort.Search(len(a.blocks), func(i int) bool { return a.blocks[i].addr > b.addr })
	a.blocks = append(a.blocks, nil)
	copy(a.blocks[i+1:], a.blocks[i:])
	a.blocks[i] = b
}

// insertFree inserts a span keeping the list sorted and coalesced.
func (a *Allocator) insertFree(s freeSpan) {
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].addr > s.addr })
	a.free = append(a.free, freeSpan{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = s
	// Coalesce with successor first, then predecessor.
	if i+1 < len(a.free) && a.free[i].addr+DevicePtr(a.free[i].size) == a.free[i+1].addr {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].addr+DevicePtr(a.free[i-1].size) == a.free[i].addr {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// blockIndex returns the index of the block starting exactly at ptr, or -1.
func (a *Allocator) blockIndex(ptr DevicePtr) int {
	i := sort.Search(len(a.blocks), func(i int) bool { return a.blocks[i].addr >= ptr })
	if i < len(a.blocks) && a.blocks[i].addr == ptr {
		return i
	}
	return -1
}

// lookup returns the block containing addr, or nil.
func (a *Allocator) lookup(addr DevicePtr) *block {
	i := sort.Search(len(a.blocks), func(i int) bool { return a.blocks[i].addr > addr })
	if i == 0 {
		return nil
	}
	b := a.blocks[i-1]
	if addr < b.addr+DevicePtr(b.req) {
		return b
	}
	return nil
}

// FindNear returns the live allocation whose reserved span — red zones and
// alignment padding included — contains addr, reporting the allocation's
// user range. ok is false when addr is not inside any reserved span.
// Memcheck classifies a faulting address that lands here as an
// out-of-bounds access on the returned allocation (the fault machinery
// already guarantees the address is outside every live user range).
func (a *Allocator) FindNear(addr DevicePtr) (r Range, ok bool) {
	i := sort.Search(len(a.blocks), func(i int) bool { return a.blocks[i].base > addr })
	if i == 0 {
		return Range{}, false
	}
	b := a.blocks[i-1]
	if addr >= b.base+DevicePtr(b.total) {
		return Range{}, false
	}
	return Range{Addr: b.addr, Size: b.req}, true
}

// InQuarantine returns the freed allocation whose reserved span contains
// addr, reporting the allocation's former user range. ok is false when the
// address is not quarantined. Memcheck classifies a faulting address that
// lands here as a use-after-free.
func (a *Allocator) InQuarantine(addr DevicePtr) (r Range, ok bool) {
	// Linear scan: the quarantine is bounded by SetQuarantine's budget and
	// this path only runs for faulting accesses, which are exceptional.
	for _, q := range a.quarantine {
		if addr >= q.span.addr && addr < q.span.addr+DevicePtr(q.span.size) {
			return Range{Addr: q.addr, Size: q.req}, true
		}
	}
	return Range{}, false
}

// AllocStats is a snapshot of allocator accounting.
type AllocStats struct {
	// Capacity is the managed address-space size in bytes.
	Capacity uint64
	// InUse is the number of bytes currently reserved (aligned sizes).
	InUse uint64
	// Peak is the high-water mark of InUse over the allocator's lifetime.
	Peak uint64
	// LiveAllocations is the number of outstanding allocations.
	LiveAllocations int
	// TotalAllocations counts every Alloc call ever made.
	TotalAllocations uint64
	// FreeSpans is the number of holes in the address space; a large number
	// relative to LiveAllocations indicates external fragmentation.
	FreeSpans int
	// LargestFreeSpan is the biggest allocation that would currently succeed.
	LargestFreeSpan uint64
	// QuarantinedBytes is the reserved space parked in the use-after-free
	// quarantine (0 unless memcheck configured one).
	QuarantinedBytes uint64
	// QuarantineEvictions counts spans released early from the quarantine
	// to keep it within budget.
	QuarantineEvictions uint64
	// InjectedFaults counts allocations failed by the fault plan.
	InjectedFaults uint64
}

// Stats returns a snapshot of the allocator's accounting.
func (a *Allocator) Stats() AllocStats {
	var largest uint64
	for _, s := range a.free {
		if s.size > largest {
			largest = s.size
		}
	}
	return AllocStats{
		Capacity:            a.capacity,
		InUse:               a.inUse,
		Peak:                a.peak,
		LiveAllocations:     a.liveCount,
		TotalAllocations:    a.allocSeq,
		FreeSpans:           len(a.free),
		LargestFreeSpan:     largest,
		QuarantinedBytes:    a.quarBytes,
		QuarantineEvictions: a.quarEvict,
		InjectedFaults:      a.injected,
	}
}

// ResetPeak sets the peak high-water mark back to the current usage. The
// optimization experiments use this to measure the peak of a specific phase.
func (a *Allocator) ResetPeak() { a.peak = a.inUse }

// Live returns the address ranges of all outstanding allocations in address
// order. The ranges report requested (not aligned) sizes, because accesses
// beyond the requested size are out of bounds.
func (a *Allocator) Live() []Range {
	out := make([]Range, len(a.blocks))
	for i, b := range a.blocks {
		out[i] = Range{Addr: b.addr, Size: b.req}
	}
	return out
}
