package gpu

// DeviceSpec configures the simulated device. The two stock specs mirror the
// paper's evaluation platforms (Table 3): an NVIDIA RTX 3090 and an A100.
// Capacities are scaled down from the physical 24 GB / 40 GB so that the
// simulator and its access maps stay laptop-sized; all workloads are scaled
// with the same factor, which preserves every ratio the experiments report.
type DeviceSpec struct {
	// Name identifies the device in reports ("RTX3090", "A100").
	Name string
	// MemoryCapacity is the device global memory size in bytes.
	MemoryCapacity uint64
	// Alignment is the allocation granularity in bytes (CUDA uses 256).
	Alignment uint64
	// GlobalLatency is the simulated cost, in cycles, of one global-memory
	// access after coalescing (amortized per instruction).
	GlobalLatency uint64
	// SharedLatency is the simulated cost of one shared-memory access. The
	// paper cites ~100x speedup of on-chip memory over global memory.
	SharedLatency uint64
	// CopyBytesPerCycle is the memcpy/memset throughput of the device.
	CopyBytesPerCycle uint64
	// MallocCycles is the fixed cost of a device allocation. Allocation APIs
	// are expensive on real devices, which is why the paper's redundant
	// allocation pattern also carries a performance benefit.
	MallocCycles uint64
	// FreeCycles is the fixed cost of a deallocation.
	FreeCycles uint64
	// LaunchCycles is the fixed overhead of a kernel launch.
	LaunchCycles uint64
	// FP32Cycles and FP64Cycles are the amortized per-operation costs of
	// single- and double-precision arithmetic. Consumer GPUs (RTX 3090)
	// have heavily rate-limited FP64 units, while the A100 runs FP64 at
	// half FP32 rate — the asymmetry that makes the paper's BICG (double
	// precision) speedups larger on the A100 and its GramSchmidt (single
	// precision) speedups larger on the RTX 3090.
	FP32Cycles uint64
	FP64Cycles uint64
}

// SpecRTX3090 returns the simulated RTX 3090 configuration. GDDR6X on the
// 3090 has higher latency and lower bandwidth than the A100's HBM2, which is
// what makes memory-bound kernels relatively slower there (and is why the
// paper's BICG speedup is larger on the A100).
func SpecRTX3090() DeviceSpec {
	return DeviceSpec{
		Name:              "RTX3090",
		MemoryCapacity:    256 << 20, // 256 MiB simulated (24 GB physical)
		Alignment:         256,
		GlobalLatency:     440,
		SharedLatency:     24,
		CopyBytesPerCycle: 30,
		MallocCycles:      90_000,
		FreeCycles:        40_000,
		LaunchCycles:      6_000,
		FP32Cycles:        450,
		FP64Cycles:        310,
	}
}

// SpecA100 returns the simulated A100 configuration.
func SpecA100() DeviceSpec {
	return DeviceSpec{
		Name:              "A100",
		MemoryCapacity:    448 << 20, // 448 MiB simulated (40 GB physical)
		Alignment:         256,
		GlobalLatency:     360,
		SharedLatency:     22,
		CopyBytesPerCycle: 48,
		MallocCycles:      80_000,
		FreeCycles:        36_000,
		LaunchCycles:      5_000,
		FP32Cycles:        450,
		FP64Cycles:        115,
	}
}

// SpecTest returns a tiny device spec for unit tests: small capacity so OOM
// paths are easy to exercise, round numbers so cost assertions are readable.
func SpecTest() DeviceSpec {
	return DeviceSpec{
		Name:              "TestGPU",
		MemoryCapacity:    1 << 20, // 1 MiB
		Alignment:         256,
		GlobalLatency:     100,
		SharedLatency:     10,
		CopyBytesPerCycle: 100,
		MallocCycles:      1000,
		FreeCycles:        500,
		LaunchCycles:      100,
		FP32Cycles:        10,
		FP64Cycles:        20,
	}
}
