package pattern

import (
	"strings"
	"testing"
)

func TestPatternNamesAndAbbrevs(t *testing.T) {
	wantAbbrev := map[Pattern]string{
		EarlyAllocation:           "EA",
		LateDeallocation:          "LD",
		RedundantAllocation:       "RA",
		UnusedAllocation:          "UA",
		MemoryLeak:                "ML",
		TemporaryIdleness:         "TI",
		DeadWrite:                 "DW",
		Overallocation:            "OA",
		NonUniformAccessFrequency: "NUAF",
		StructuredAccess:          "SA",
		UncoalescedAccess:         "UC",
	}
	if len(wantAbbrev) != NumPatterns {
		t.Fatalf("pattern count = %d", NumPatterns)
	}
	if NumPaperPatterns != 10 {
		t.Fatalf("paper pattern count = %d, want 10", NumPaperPatterns)
	}
	for p, ab := range wantAbbrev {
		if p.Abbrev() != ab {
			t.Errorf("%v.Abbrev() = %q, want %q", p, p.Abbrev(), ab)
		}
		if p.String() == "" || strings.HasPrefix(p.String(), "Pattern(") {
			t.Errorf("%q has no name", ab)
		}
		if wantPaper := p != UncoalescedAccess; p.InPaper() != wantPaper {
			t.Errorf("%v.InPaper() = %v, want %v", p, p.InPaper(), wantPaper)
		}
	}
}

func TestParseIDRoundtrip(t *testing.T) {
	for _, p := range All() {
		id := p.ID()
		if strings.ToLower(id) != id || strings.Contains(id, " ") {
			t.Errorf("%v.ID() = %q is not kebab-case", p, id)
		}
		got, ok := ParseID(id)
		if !ok || got != p {
			t.Errorf("ParseID(%q) = %v, %v", id, got, ok)
		}
	}
	if _, ok := ParseID("bogus-pattern"); ok {
		t.Error("ParseID accepted garbage")
	}
}

func TestSeverityClassStrings(t *testing.T) {
	want := map[SeverityClass]string{
		SeverityInfo:    "info",
		SeverityWarning: "warning",
		SeverityError:   "error",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("SeverityClass(%d).String() = %q, want %q", s, s.String(), str)
		}
	}
}

func TestParseAbbrevRoundtrip(t *testing.T) {
	for _, p := range All() {
		got, ok := ParseAbbrev(p.Abbrev())
		if !ok || got != p {
			t.Errorf("ParseAbbrev(%q) = %v, %v", p.Abbrev(), got, ok)
		}
		// Case-insensitive.
		got, ok = ParseAbbrev(strings.ToLower(p.Abbrev()))
		if !ok || got != p {
			t.Errorf("lowercase ParseAbbrev(%q) failed", p.Abbrev())
		}
	}
	if _, ok := ParseAbbrev("ZZ"); ok {
		t.Error("ParseAbbrev accepted garbage")
	}
}

func TestObjectLevelSplit(t *testing.T) {
	objectLevel := []Pattern{EarlyAllocation, LateDeallocation, RedundantAllocation,
		UnusedAllocation, MemoryLeak, TemporaryIdleness, DeadWrite}
	intra := []Pattern{Overallocation, NonUniformAccessFrequency, StructuredAccess,
		UncoalescedAccess}
	for _, p := range objectLevel {
		if !p.ObjectLevel() {
			t.Errorf("%v should be object-level", p)
		}
	}
	for _, p := range intra {
		if p.ObjectLevel() {
			t.Errorf("%v should be intra-object", p)
		}
	}
}

func TestAllIsTableOrdered(t *testing.T) {
	all := All()
	if len(all) != NumPatterns {
		t.Fatalf("All() = %d entries", len(all))
	}
	for i, p := range all {
		if int(p) != i {
			t.Errorf("All()[%d] = %v", i, p)
		}
	}
}

func TestFindingKeyUniqueness(t *testing.T) {
	a := Finding{Pattern: EarlyAllocation, Object: 1}
	b := Finding{Pattern: LateDeallocation, Object: 1}
	c := Finding{Pattern: EarlyAllocation, Object: 2}
	d := Finding{Pattern: NonUniformAccessFrequency, Object: 1, AtKernel: "k1"}
	e := Finding{Pattern: NonUniformAccessFrequency, Object: 1, AtKernel: "k2"}
	keys := map[string]bool{}
	for _, f := range []Finding{a, b, c, d, e} {
		if keys[f.Key()] {
			t.Errorf("duplicate key %q", f.Key())
		}
		keys[f.Key()] = true
	}
}
