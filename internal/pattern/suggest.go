package pattern

import (
	"fmt"

	"drgpum/internal/trace"
)

// Suggest renders the optimization guidance for a finding in the style of
// the paper's GUI detail pane (§7.1): concrete, object- and API-specific
// advice a developer can act on directly.
func Suggest(t *trace.Trace, f *Finding) string {
	obj := t.Object(f.Object)
	name := obj.DisplayName()
	label := func(api uint64) string { return t.API(api).Label() }

	switch f.Pattern {
	case EarlyAllocation:
		return fmt.Sprintf(
			"%s is allocated at %s, %d GPU API(s) before its first-touch GPU API %s. "+
				"Defer the allocation until just before %s to shorten the object's idle prefix.",
			name, label(f.APIs[0]), f.Distance-1, label(f.APIs[1]), label(f.APIs[1]))

	case LateDeallocation:
		return fmt.Sprintf(
			"The last GPU API that accesses %s is %s, but %s is not freed until %s "+
				"(%d GPU API(s) later). Free it immediately after %s.",
			name, label(f.APIs[0]), name, label(f.APIs[1]), f.Distance-1, label(f.APIs[0]))

	case RedundantAllocation:
		partner := t.Object(f.Partner).DisplayName()
		return fmt.Sprintf(
			"%s (%d bytes) is first accessed after the last access to %s (%d bytes) ends. "+
				"Reuse %s's memory for %s instead of allocating anew; this also avoids an "+
				"expensive device allocation call.",
			name, obj.Size, partner, t.Object(f.Partner).Size, partner, name)

	case UnusedAllocation:
		return fmt.Sprintf(
			"%s (%d bytes) is never accessed by any GPU API during its lifetime. "+
				"Remove the allocation, or allocate it conditionally on the path that uses it.",
			name, obj.Size)

	case MemoryLeak:
		return fmt.Sprintf(
			"%s (%d bytes) is never deallocated. Pair its allocation with a free so "+
				"allocation and deallocation always appear together.",
			name, obj.Size)

	case TemporaryIdleness:
		w := f.Windows[0]
		return fmt.Sprintf(
			"%s is idle between %s and %s while %d other GPU API(s) execute. "+
				"Free it before the gap and reallocate after, or offload it to host memory "+
				"for the duration of the gap and prefetch it back before %s.",
			name, label(w.FromAPI), label(w.ToAPI), w.Intervening, label(w.ToAPI))

	case DeadWrite:
		return fmt.Sprintf(
			"%s is written by %s and overwritten by %s with no intervening access. "+
				"The first write is dead; remove it.",
			name, label(f.APIs[0]), label(f.APIs[1]))

	case Overallocation:
		base := fmt.Sprintf(
			"Only %.3g%% of %s's elements are ever accessed (fragmentation of the "+
				"unaccessed space: %.3g%%). ",
			f.AccessedPct, name, f.FragmentationPct)
		return base + OverallocationGuidance(f.AccessedPct, f.FragmentationPct)

	case NonUniformAccessFrequency:
		return fmt.Sprintf(
			"Access frequencies of %s's elements at kernel %s vary with a coefficient "+
				"of variation of %.3g%%. Place the hottest slices in shared memory or "+
				"pin them in the L2 cache to accelerate accesses.",
			name, f.AtKernel, f.VariationPct)

	case StructuredAccess:
		return fmt.Sprintf(
			"Each invocation of kernel %s accesses a disjoint slice of %s. "+
				"Replace the single allocation with one slice-sized allocation reused "+
				"(or re-allocated) per invocation, so only one slice is live at a time.",
			f.AtKernel, name)

	case UncoalescedAccess:
		return fmt.Sprintf(
			"Kernel %s touches %s with uncoalesced accesses: the cost model counts "+
				"far more memory transactions than the coalesced ideal. Reorder the "+
				"access pattern so consecutive threads touch consecutive addresses "+
				"(e.g. transpose the loop nest, tile through shared memory, or switch "+
				"an array-of-structs layout to struct-of-arrays).",
			f.AtKernel, name)

	default:
		return ""
	}
}

// OverallocationGuidance returns the paper's Table 2 advice for an
// overallocated object, given the percentage of accessed elements and the
// fragmentation percentage. The quadrant boundary is the paper's 80%
// investigation threshold.
func OverallocationGuidance(accessedPct, fragPct float64) string {
	const boundary = 80.0
	lowAccess := accessedPct < boundary
	lowFrag := fragPct < boundary
	switch {
	case lowAccess && lowFrag:
		return "Easy to optimize: shrinking/freeing the unaccessed memory yields " +
			"nontrivial memory savings."
	case !lowAccess && lowFrag:
		return "Shrinking/freeing the unaccessed memory yields little benefit to " +
			"memory saving."
	case lowAccess && !lowFrag:
		return "Difficult to optimize: unaccessed elements are scattered all over " +
			"the data object."
	default:
		return "No action recommended for memory saving."
	}
}
