// Package pattern defines the ten memory-inefficiency patterns of DrGPUM
// (paper §3) and the Finding type shared by the object-level and
// intra-object detectors.
package pattern

import (
	"fmt"
	"strings"

	"drgpum/internal/trace"
)

// Pattern enumerates the ten inefficiency patterns of paper §3, in the
// order of Table 1.
type Pattern uint8

const (
	// EarlyAllocation (Definition 3.1): GPU APIs execute between an
	// object's allocation and its first access.
	EarlyAllocation Pattern = iota
	// LateDeallocation (Definition 3.2): GPU APIs execute between an
	// object's last access and its deallocation.
	LateDeallocation
	// RedundantAllocation (Definition 3.3): an object of (approximately)
	// equal size could have reused another object's memory because their
	// live access windows do not overlap.
	RedundantAllocation
	// UnusedAllocation (Definition 3.4): the object is never accessed by
	// any GPU API.
	UnusedAllocation
	// MemoryLeak (Definition 3.5): the object is never deallocated.
	MemoryLeak
	// TemporaryIdleness (Definition 3.6): at least X GPU APIs execute
	// between two consecutive accesses to the object.
	TemporaryIdleness
	// DeadWrite (Definition 3.7): two memory copy/set writes to the object
	// with no intervening access.
	DeadWrite
	// Overallocation (Definition 3.8): fewer than X% of the object's
	// elements are ever accessed.
	Overallocation
	// NonUniformAccessFrequency (Definition 3.9): the coefficient of
	// variation of per-element access frequencies at some GPU API exceeds
	// X%.
	NonUniformAccessFrequency
	// StructuredAccess (Definition 3.10): each GPU API accesses a disjoint
	// slice of the object.
	StructuredAccess
	// UncoalescedAccess is a repo extension beyond the paper's ten patterns:
	// the memory-hierarchy cost model observed that kernels touch the object
	// with access patterns whose per-warp transaction count substantially
	// exceeds the coalesced ideal (DESIGN.md §4.10). Unlike the byte-centric
	// patterns above it wastes bandwidth and cycles, not footprint.
	UncoalescedAccess

	numPatterns
)

// NumPatterns is the number of defined patterns.
const NumPatterns = int(numPatterns)

// NumPaperPatterns is the number of patterns defined by the source paper
// (§3, Table 1). Patterns at and beyond this index are repo extensions;
// paper-replication tables only render the first NumPaperPatterns columns.
const NumPaperPatterns = int(StructuredAccess) + 1

// InPaper reports whether the pattern is one of the paper's original ten
// (as opposed to a repo extension such as UncoalescedAccess).
func (p Pattern) InPaper() bool { return int(p) < NumPaperPatterns }

// ObjectLevel reports whether the pattern belongs to the object-level
// category (§3.1) as opposed to intra-object (§3.2).
func (p Pattern) ObjectLevel() bool { return p <= DeadWrite }

// String returns the full pattern name as used in the paper's tables.
func (p Pattern) String() string {
	switch p {
	case EarlyAllocation:
		return "Early Allocation"
	case LateDeallocation:
		return "Late Deallocation"
	case RedundantAllocation:
		return "Redundant Allocation"
	case UnusedAllocation:
		return "Unused Allocation"
	case MemoryLeak:
		return "Memory Leak"
	case TemporaryIdleness:
		return "Temporary Idleness"
	case DeadWrite:
		return "Dead Write"
	case Overallocation:
		return "Overallocation"
	case NonUniformAccessFrequency:
		return "Non-uniform Access Frequency"
	case StructuredAccess:
		return "Structured Access"
	case UncoalescedAccess:
		return "Uncoalesced Access"
	default:
		return fmt.Sprintf("Pattern(%d)", uint8(p))
	}
}

// Abbrev returns the two-letter code of the paper's Table 4 (EA, LD, RA,
// UA, ML, TI, DW, OA, NUAF, SA).
func (p Pattern) Abbrev() string {
	switch p {
	case EarlyAllocation:
		return "EA"
	case LateDeallocation:
		return "LD"
	case RedundantAllocation:
		return "RA"
	case UnusedAllocation:
		return "UA"
	case MemoryLeak:
		return "ML"
	case TemporaryIdleness:
		return "TI"
	case DeadWrite:
		return "DW"
	case Overallocation:
		return "OA"
	case NonUniformAccessFrequency:
		return "NUAF"
	case StructuredAccess:
		return "SA"
	case UncoalescedAccess:
		return "UC"
	default:
		return "??"
	}
}

// ID returns the stable kebab-case identifier used by every JSON schema the
// toolchain emits (drgpum -json, drgpum-staticadv -json, drgpum-lint). IDs
// are part of the output contract: never renumber or rename them.
func (p Pattern) ID() string {
	switch p {
	case EarlyAllocation:
		return "early-allocation"
	case LateDeallocation:
		return "late-deallocation"
	case RedundantAllocation:
		return "redundant-allocation"
	case UnusedAllocation:
		return "unused-allocation"
	case MemoryLeak:
		return "memory-leak"
	case TemporaryIdleness:
		return "temporary-idleness"
	case DeadWrite:
		return "dead-write"
	case Overallocation:
		return "overallocation"
	case NonUniformAccessFrequency:
		return "non-uniform-access-frequency"
	case StructuredAccess:
		return "structured-access"
	case UncoalescedAccess:
		return "uncoalesced-access"
	default:
		return fmt.Sprintf("pattern-%d", uint8(p))
	}
}

// ParseID resolves a kebab-case pattern identifier.
func ParseID(s string) (Pattern, bool) {
	for p := EarlyAllocation; p < numPatterns; p++ {
		if p.ID() == s {
			return p, true
		}
	}
	return 0, false
}

// SeverityClass buckets a finding's importance into the three-level scale
// shared by every tool's JSON schema (profiler findings, static advisor
// findings and memcheck reports all use the same strings).
type SeverityClass uint8

const (
	// SeverityInfo marks advisory findings with little modeled waste.
	SeverityInfo SeverityClass = iota
	// SeverityWarning marks findings with substantial modeled waste.
	SeverityWarning
	// SeverityError marks definite defects (leaks, out-of-bounds, ...).
	SeverityError
)

// String returns the schema string ("info", "warning", "error").
func (s SeverityClass) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityError:
		return "error"
	default:
		return fmt.Sprintf("severity-%d", uint8(s))
	}
}

// ParseAbbrev resolves a Table-4 abbreviation.
func ParseAbbrev(s string) (Pattern, bool) {
	for p := EarlyAllocation; p < numPatterns; p++ {
		if p.Abbrev() == strings.ToUpper(s) {
			return p, true
		}
	}
	return 0, false
}

// All returns every pattern in table order.
func All() []Pattern {
	out := make([]Pattern, NumPatterns)
	for i := range out {
		out[i] = Pattern(i)
	}
	return out
}

// IdleWindow is one temporary-idleness gap: the object is untouched between
// the two listed accesses.
type IdleWindow struct {
	// FromAPI and ToAPI are the consecutive accesses bounding the window.
	FromAPI uint64
	ToAPI   uint64
	// Intervening is the number of GPU APIs executed inside the window.
	Intervening int
}

// Finding is one detected inefficiency instance.
type Finding struct {
	// Pattern is the detected inefficiency class.
	Pattern Pattern
	// Object is the affected data object.
	Object trace.ObjectID
	// Partner is the reuse donor for RedundantAllocation (the
	// already-allocated object whose memory Object can reuse).
	Partner trace.ObjectID
	// HasPartner reports whether Partner is valid.
	HasPartner bool
	// APIs are the GPU API invocation indices that evidence the pattern
	// (e.g. [allocAPI, firstAccessAPI] for EarlyAllocation, the two killing
	// writes for DeadWrite).
	APIs []uint64
	// Distance is the topological inefficiency distance between the
	// evidencing APIs (paper §5.3); 0 when not applicable.
	Distance uint64
	// WastedBytes estimates how much device memory the inefficiency pins
	// (used for severity ranking).
	WastedBytes uint64
	// PeakSavingsBytes is the advisor's estimate of the peak reduction from
	// fixing this finding alone (0 when the object never shapes the peak).
	PeakSavingsBytes uint64
	// Windows lists idle windows for TemporaryIdleness findings.
	Windows []IdleWindow
	// AccessedPct is the percentage of elements accessed (Overallocation).
	AccessedPct float64
	// FragmentationPct is the paper's Equation 1 metric (Overallocation).
	FragmentationPct float64
	// VariationPct is the coefficient of variation of per-element access
	// frequencies (NonUniformAccessFrequency), in percent.
	VariationPct float64
	// AtKernel is the kernel name evidencing an intra-object pattern.
	AtKernel string
	// ModeledCycles is the cost model's estimate of the memory-hierarchy
	// cycles the affected object's traffic currently costs (0 when the model
	// is disabled or the pattern carries no traffic component).
	ModeledCycles uint64
	// CyclesSaved is the cost model's estimate of cycles recovered by fixing
	// this finding (DESIGN.md §4.10). When the model is enabled, severity
	// ranking uses this instead of the byte-based formula.
	CyclesSaved uint64
	// Severity orders findings within a report (higher is more severe).
	Severity float64
	// Suggestion is the human-facing optimization guidance.
	Suggestion string
	// OnPeak marks findings whose object is live at one of the program's
	// top memory peaks (the GUI highlights these, paper §4).
	OnPeak bool
}

// Key returns a stable identity for deduplication across detector passes.
func (f *Finding) Key() string {
	return fmt.Sprintf("%s/%d/%s", f.Pattern.Abbrev(), f.Object, f.AtKernel)
}
