package pattern

import (
	"strings"
	"testing"

	"drgpum/internal/callpath"
	"drgpum/internal/gpu"
	"drgpum/internal/trace"
)

// suggestTrace builds a small synthetic trace with enough structure to
// render every pattern's suggestion.
func suggestTrace() *trace.Trace {
	mkRec := func(idx uint64, kind gpu.APIKind, stream, seq int) *gpu.APIRecord {
		return &gpu.APIRecord{Index: idx, Kind: kind, Name: kind.String(), Stream: stream, SeqInStream: seq}
	}
	tr := &trace.Trace{Unwinder: callpath.NewUnwinder()}
	kinds := []gpu.APIKind{
		gpu.APIMalloc, gpu.APIMalloc, gpu.APIMemset, gpu.APIMemcpy,
		gpu.APIKernel, gpu.APIKernel, gpu.APIFree, gpu.APIFree,
	}
	seqs := map[gpu.APIKind]int{}
	for i, k := range kinds {
		rec := mkRec(uint64(i), k, 0, seqs[k])
		seqs[k]++
		tr.APIs = append(tr.APIs, &trace.APIInfo{Rec: rec, Topo: uint64(i)})
	}
	tr.Objects = []*trace.Object{
		{ID: 0, Ptr: 0x1000, Size: 4096, ElemSize: 4, Label: "alpha", AllocAPI: 0, FreeAPI: 6,
			Accesses: []trace.AccessEvent{
				{API: 2, APIKind: gpu.APIMemset, Write: true},
				{API: 3, APIKind: gpu.APIMemcpy, Write: true},
				{API: 5, APIKind: gpu.APIKernel, Read: true},
			}},
		{ID: 1, Ptr: 0x3000, Size: 4096, ElemSize: 4, Label: "beta", AllocAPI: 1, FreeAPI: 7,
			Accesses: []trace.AccessEvent{
				{API: 4, APIKind: gpu.APIKernel, Write: true},
			}},
	}
	return tr
}

// TestEverySuggestionRenders checks each pattern's guidance names the
// object and gives an imperative action.
func TestEverySuggestionRenders(t *testing.T) {
	tr := suggestTrace()
	cases := []struct {
		f        Finding
		mentions []string
	}{
		{Finding{Pattern: EarlyAllocation, Object: 0, APIs: []uint64{0, 2}, Distance: 2},
			[]string{"alpha", "Defer", "SET(0, 0)"}},
		{Finding{Pattern: LateDeallocation, Object: 0, APIs: []uint64{5, 6}, Distance: 1},
			[]string{"alpha", "Free it immediately", "KERL(0, 1)"}},
		{Finding{Pattern: RedundantAllocation, Object: 1, Partner: 0, HasPartner: true, APIs: []uint64{5, 4}},
			[]string{"beta", "alpha", "Reuse"}},
		{Finding{Pattern: UnusedAllocation, Object: 1},
			[]string{"beta", "never accessed", "Remove"}},
		{Finding{Pattern: MemoryLeak, Object: 1},
			[]string{"beta", "never deallocated"}},
		{Finding{Pattern: TemporaryIdleness, Object: 0,
			Windows: []IdleWindow{{FromAPI: 2, ToAPI: 5, Intervening: 2}}},
			[]string{"alpha", "idle", "offload"}},
		{Finding{Pattern: DeadWrite, Object: 0, APIs: []uint64{2, 3}},
			[]string{"alpha", "dead", "SET(0, 0)", "CPY(0, 0)"}},
		{Finding{Pattern: Overallocation, Object: 0, AccessedPct: 5, FragmentationPct: 1},
			[]string{"alpha", "5", "Easy to optimize"}},
		{Finding{Pattern: NonUniformAccessFrequency, Object: 0, AtKernel: "k3", VariationPct: 58},
			[]string{"alpha", "k3", "58", "shared memory"}},
		{Finding{Pattern: StructuredAccess, Object: 0, AtKernel: "k3"},
			[]string{"alpha", "k3", "slice"}},
	}
	for _, c := range cases {
		got := Suggest(tr, &c.f)
		if got == "" {
			t.Errorf("%s: empty suggestion", c.f.Pattern)
			continue
		}
		for _, m := range c.mentions {
			if !strings.Contains(got, m) {
				t.Errorf("%s suggestion missing %q:\n%s", c.f.Pattern, m, got)
			}
		}
	}
}

func TestSuggestionFallbackName(t *testing.T) {
	tr := suggestTrace()
	tr.Objects[0].Label = ""
	f := Finding{Pattern: MemoryLeak, Object: 0}
	if got := Suggest(tr, &f); !strings.Contains(got, "object#0") {
		t.Errorf("unlabelled object suggestion = %q", got)
	}
}
