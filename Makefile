GO ?= go

.PHONY: check build test race vet fmt lint api staticadv serve-smoke bench bench-streaming bench-pipeline bench-costmodel cover

# check is the tier-1 verify gate (see ROADMAP.md): static checks, the
# invariant linter suite, the static kernel advisor gate, the public API
# surface lock, the full test suite, the race-enabled run that guards
# the concurrent offline analysis pipeline, and the drgpum-serve smoke
# round-trip. Steps run in cheapest-first order and fail fast; each
# announces itself so CI logs show exactly where a red run stopped.
check: vet fmt build lint staticadv api test race serve-smoke
	@echo "== check: all gates passed =="

build:
	@echo "== build =="
	$(GO) build ./...

test:
	@echo "== test =="
	$(GO) test ./...

race:
	@echo "== race =="
	$(GO) test -race ./...

vet:
	@echo "== vet =="
	$(GO) vet ./...

fmt:
	@echo "== fmt =="
	@out="$$(gofmt -s -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt -s needed on:"; echo "$$out"; exit 1; \
	fi

# lint runs the drgpum invariant analyzers (mapiter, hookreentry,
# sharedwrite, simerr) over the whole module. See cmd/drgpum-lint and
# DESIGN.md "Mechanized invariants".
lint:
	@echo "== lint =="
	$(GO) run ./cmd/drgpum-lint ./...

# staticadv runs the static kernel advisor (DESIGN.md "Static kernel
# advisor") twice: a zero-finding sweep over the annotated examples tree,
# then the per-workload sweep + stride report + cross-validation gate
# (>=80% naive agreement with the dynamic Table 1, zero static-only
# findings on optimized variants). The second invocation runs all three
# suites in ONE process on purpose: the internal/lint loader cache hands
# them the same loaded workloads package, and -loadstats prints the
# measured saving (~100ms of go list -export + typecheck avoided per
# extra suite on a warm build cache — about half the step's load cost).
staticadv:
	@echo "== staticadv (examples sweep + workload xval gate; one export-data load serves sweep+stride+xval) =="
	$(GO) run ./cmd/drgpum-staticadv ./examples/...
	$(GO) run ./cmd/drgpum-staticadv -workloads -stride -xval -gate -loadstats > STATICADV.txt
	@tail -n 4 STATICADV.txt

# api diffs the exported surface of the public packages against the
# api/drgpum.txt lock. Regenerate deliberately with:
#   $(GO) run ./cmd/drgpum-api -write
api:
	@echo "== api =="
	$(GO) run ./cmd/drgpum-api -check

# serve-smoke boots the drgpum-serve daemon on a loopback port, drives
# one profiling session end to end through its own HTTP API (submit →
# poll → report → metrics), then shuts it down gracefully — the cheapest
# whole-binary proof that the serving path works.
serve-smoke:
	@echo "== serve-smoke =="
	$(GO) run ./cmd/drgpum-serve -smoke

bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# bench-streaming measures the streaming pipeline (ingest ns/op, snapshot
# ns/op, resident bytes, offline counterparts) and writes
# BENCH_streaming.json. CI publishes it from the bench-smoke step; the
# EXPERIMENTS.md streaming appendix records representative values.
bench-streaming:
	@echo "== bench-streaming =="
	$(GO) run ./cmd/drgpum-bench -out BENCH_streaming.json
	@cat BENCH_streaming.json

# bench-pipeline measures the pipelined intra-run mode against the
# sequential one (per-workload end-to-end medians) and rewrites
# BENCH_pipeline.json. The checked-in copy is the current baseline —
# taken on the CI runner class, gomaxprocs recorded inside; CI re-runs
# this and publishes the fresh numbers in the step summary.
bench-pipeline:
	@echo "== bench-pipeline =="
	$(GO) run ./cmd/drgpum-bench -pipelined -out BENCH_pipeline.json
	@cat BENCH_pipeline.json

# bench-costmodel measures what the memory-hierarchy cost model adds to an
# end-to-end profile (cost-on vs cost-off per-workload medians, overhead
# percentage, total modeled cycles as a determinism fingerprint) and
# rewrites BENCH_costmodel.json. The checked-in copy is the baseline; CI
# re-runs this and publishes the fresh numbers in the step summary.
bench-costmodel:
	@echo "== bench-costmodel =="
	$(GO) run ./cmd/drgpum-bench -costmodel -out BENCH_costmodel.json
	@cat BENCH_costmodel.json

# cover runs the test suite with coverage of every package (not just the
# one under test) and prints the per-function summary. cover.out is
# .gitignored; open it with `go tool cover -html=cover.out`.
cover:
	@echo "== cover =="
	$(GO) test -coverprofile=cover.out -coverpkg=./... ./...
	$(GO) tool cover -func=cover.out | tail -n 1
