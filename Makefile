GO ?= go

.PHONY: check build test race vet fmt bench

# check is the tier-1 verify gate (see ROADMAP.md): static checks, the
# full test suite, and the race-enabled run that guards the concurrent
# offline analysis pipeline.
check: vet fmt build test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -run xxx -bench . -benchmem ./...
